"""Properties of the Wilson score interval the stopping rule relies on.

The sequential sampler retires a fault the moment its interval
half-width crosses the target, so the interval must (a) always contain
the point estimate, (b) tighten monotonically as trials grow for a
fixed success fraction, and (c) pin the 0/n and n/n edges exactly —
otherwise an undetectable fault would never report a closed interval.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sampling.wilson import WilsonInterval, wilson_interval, z_score

TRIALS = st.integers(min_value=1, max_value=100_000)
CONFIDENCE = st.floats(min_value=0.5, max_value=0.999)


@st.composite
def tallies(draw):
    n = draw(TRIALS)
    k = draw(st.integers(min_value=0, max_value=n))
    return k, n


class TestShape:
    @given(tallies(), CONFIDENCE)
    def test_bounds_are_an_ordered_subrange_of_unit(self, tally, confidence):
        k, n = tally
        w = wilson_interval(k, n, confidence)
        assert 0.0 <= w.low <= w.high <= 1.0

    @given(tallies(), CONFIDENCE)
    def test_contains_the_point_estimate(self, tally, confidence):
        k, n = tally
        w = wilson_interval(k, n, confidence)
        assert w.contains(w.estimate)
        assert w.estimate == k / n

    @given(TRIALS, CONFIDENCE)
    def test_edges_are_exact(self, n, confidence):
        assert wilson_interval(0, n, confidence).low == 0.0
        assert wilson_interval(n, n, confidence).high == 1.0

    @given(CONFIDENCE)
    def test_zero_trials_is_the_vacuous_interval(self, confidence):
        w = wilson_interval(0, 0, confidence)
        assert (w.low, w.high) == (0.0, 1.0)
        assert w.estimate == 0.0

    @given(tallies())
    def test_half_width_is_half_the_width(self, tally):
        k, n = tally
        w = wilson_interval(k, n)
        assert w.half_width == pytest.approx(w.width / 2.0)


class TestMonotonicity:
    @given(tallies(), st.integers(min_value=2, max_value=64))
    def test_width_shrinks_as_trials_grow_at_fixed_fraction(
        self, tally, factor
    ):
        """Scaling (k, n) by an integer factor keeps p̂ and must tighten
        the interval — the property that makes 'keep sampling until the
        interval is narrow enough' a terminating rule."""
        k, n = tally
        small = wilson_interval(k, n)
        large = wilson_interval(k * factor, n * factor)
        assert large.width < small.width

    @given(tallies())
    def test_higher_confidence_is_never_narrower(self, tally):
        k, n = tally
        assert (
            wilson_interval(k, n, 0.99).width
            >= wilson_interval(k, n, 0.90).width
        )


class TestValidation:
    def test_negative_trials_raises(self):
        with pytest.raises(ValueError):
            wilson_interval(0, -1)

    @pytest.mark.parametrize("successes", [-1, 11])
    def test_successes_outside_trials_raises(self, successes):
        with pytest.raises(ValueError):
            wilson_interval(successes, 10)

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5, 2.0])
    def test_degenerate_confidence_raises(self, confidence):
        with pytest.raises(ValueError):
            z_score(confidence)

    def test_z_score_of_nominal_confidence(self):
        assert z_score(0.95) == pytest.approx(1.959963985, abs=1e-6)

    def test_interval_is_a_frozen_record(self):
        w = wilson_interval(3, 16)
        assert isinstance(w, WilsonInterval)
        with pytest.raises(AttributeError):
            w.low = 0.5
