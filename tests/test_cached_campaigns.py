"""Acceptance tests for the content-addressed campaign run-cache.

The contract under test (the PR's headline acceptance criterion): a
re-run of a full c432 stuck-at campaign with the cache on is **served
from the ledger with zero fault simulations** — every ``sim.*`` and
``bdd.*`` counter flat at zero, ``campaign.cache_hit`` pinned to 1 —
and the served detectabilities are *equal* (exact Fractions, so
byte-identical rendered figures), not merely close.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import runcache
from repro.experiments.campaigns import (
    bridging_campaign,
    clear_campaign_caches,
    stuck_at_campaign,
)
from repro.experiments.config import get_scale
from repro.faults.bridging import BridgeKind
from repro.obs import store


@pytest.fixture
def cached_scale(tmp_path, monkeypatch):
    """A ci-scale with the ledger rooted in this test's tmp dir."""
    monkeypatch.setenv(store.CACHE_ENV, str(tmp_path / "ledger"))
    runcache._LEDGERS.clear()
    clear_campaign_caches()
    yield dataclasses.replace(get_scale("ci"), cache=True)
    clear_campaign_caches()
    runcache._LEDGERS.clear()


def _work_counters(result) -> dict[str, float]:
    """Every simulation/BDD work counter of a campaign's metrics."""
    counters = result.metrics().snapshot()["counters"]
    return {
        name: value
        for name, value in counters.items()
        if name.startswith(("sim.", "bdd."))
    }


# ----------------------------------------------------------------------
# The acceptance criterion: c432 full stuck-at served with zero work
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["bitparallel", "dp"])
def test_c432_second_run_is_served_with_zero_simulation(
    cached_scale, engine
):
    scale = dataclasses.replace(cached_scale, engine=engine)
    computed = stuck_at_campaign("c432", scale)
    assert computed.from_cache is False
    assert computed.results, "campaign computed nothing"
    assert sum(_work_counters(computed).values()) > 0, (
        "computed run recorded no simulation work — counter wiring broke"
    )
    assert computed.metrics().counter_value("campaign.cache_hit") == 0

    clear_campaign_caches()  # drop the in-memory layer; ledger remains
    served = stuck_at_campaign("c432", scale)

    assert served.from_cache is True
    metrics = served.metrics()
    assert metrics.counter_value("campaign.cache_hit") == 1
    flat = _work_counters(served)
    assert all(value == 0 for value in flat.values()), (
        f"served run did simulation work: "
        f"{ {k: v for k, v in flat.items() if v} }"
    )
    assert served.total_seconds() == 0.0
    assert served.chunk_stats == ()

    # equal — exact Fractions, identical fault order, identical strata
    assert served == computed
    assert served.detectabilities() == computed.detectabilities()
    assert [r.fault for r in served.results] == [
        r.fault for r in computed.results
    ]


def test_bridging_campaign_round_trips_through_ledger(cached_scale):
    computed = bridging_campaign("c95", BridgeKind.AND, cached_scale)
    clear_campaign_caches()
    served = bridging_campaign("c95", BridgeKind.AND, cached_scale)
    assert served.from_cache and served == computed
    assert served.metrics().counter_value("campaign.cache_hit") == 1


def test_cache_stats_count_the_round_trip(cached_scale):
    stuck_at_campaign("c17", cached_scale)
    clear_campaign_caches()
    stuck_at_campaign("c17", cached_scale)
    stats = runcache.cache_stats()
    assert stats["puts"] >= 1 and stats["hits"] >= 1
    assert stats["corrupt"] == 0


# ----------------------------------------------------------------------
# The ledger never serves wrong data
# ----------------------------------------------------------------------
def test_corrupted_ledger_object_forces_recompute(cached_scale):
    computed = stuck_at_campaign("c17", cached_scale)
    clear_campaign_caches()

    ledger = runcache.ledger()
    [key] = ledger.keys()
    path = ledger.object_path(key)
    path.write_text(path.read_text().replace('"exact": true', '"exact": false'))

    recomputed = stuck_at_campaign("c17", cached_scale)
    assert recomputed.from_cache is False  # tamper detected → recompute
    assert recomputed == computed


def test_decode_garbage_body_forces_recompute(cached_scale):
    stuck_at_campaign("c17", cached_scale)
    clear_campaign_caches()

    ledger = runcache.ledger()
    [key] = ledger.keys()
    # valid object, valid hash, but a body the codec rejects
    ledger.put(key, {"schema": "not-a-campaign/1"})
    recomputed = stuck_at_campaign("c17", cached_scale)
    assert recomputed.from_cache is False
    assert recomputed.results


# ----------------------------------------------------------------------
# Projection semantics
# ----------------------------------------------------------------------
def test_projection_excludes_result_neutral_knobs(cached_scale):
    base = runcache.stuck_at_projection("c432", cached_scale, "dp")
    reworked = dataclasses.replace(cached_scale, workers=8, reorder=True)
    assert runcache.stuck_at_projection("c432", reworked, "dp") == base


def test_projection_includes_result_shaping_knobs(cached_scale):
    base = store.run_key(
        runcache.stuck_at_projection("c432", cached_scale, "dp")
    )
    for variant in (
        dataclasses.replace(cached_scale, seed=99),
        dataclasses.replace(
            cached_scale, stuck_at_samples={"c432": 3}
        ),
    ):
        key = store.run_key(
            runcache.stuck_at_projection("c432", variant, "dp")
        )
        assert key != base
    assert (
        store.run_key(
            runcache.stuck_at_projection("c432", cached_scale, "bitparallel")
        )
        != base
    )


def test_round_trip_equal_debug_helper(cached_scale):
    result = stuck_at_campaign("c17", cached_scale)
    assert runcache.round_trip_equal("c17", result)


# ----------------------------------------------------------------------
# Switches
# ----------------------------------------------------------------------
def test_cache_off_touches_no_ledger(tmp_path, monkeypatch):
    monkeypatch.setenv(store.CACHE_ENV, str(tmp_path / "ledger"))
    runcache._LEDGERS.clear()
    clear_campaign_caches()
    scale = dataclasses.replace(get_scale("ci"), cache=False)
    result = stuck_at_campaign("c17", scale)
    assert result.from_cache is False
    assert not (tmp_path / "ledger").exists()
    clear_campaign_caches()


def test_scale_cache_flag_overrides_env(monkeypatch):
    monkeypatch.delenv(store.CACHE_ENV, raising=False)
    assert runcache.cache_enabled(
        dataclasses.replace(get_scale("ci"), cache=True)
    )
    monkeypatch.setenv(store.CACHE_ENV, "1")
    assert not runcache.cache_enabled(
        dataclasses.replace(get_scale("ci"), cache=False)
    )
