"""Sampled campaign mode: routing, determinism, sharding, CLI, roster.

The statistical mode's contract has three legs, each pinned here:

* **routing** — ``Scale.mode`` / ``--mode sampled`` / ``$REPRO_MODE``
  all reach the ``"sampled"`` chunk body, supersede any exact engine
  choice, and cache under the ``"sampled"`` engine key;
* **invariance** — substream-seeded pattern rounds make the merged
  campaign bit-identical under any chunk size, worker count or
  completion order, and the exact OBDD path is never touched;
* **workloads** — the roster accepts external ``.bench`` netlists, and
  the committed ``tests/bench/mult16.bench`` fixture (32 inputs — past
  every built-in) runs the whole pipeline end to end.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

pytest.importorskip("numpy")

from repro.benchcircuits import get_circuit
from repro.experiments import campaigns, parallel
from repro.experiments.campaigns import (
    _resolve_routing,
    clear_campaign_caches,
    stuck_at_campaign,
)
from repro.experiments.config import get_scale
from repro.faults.stuck_at import collapsed_checkpoint_faults
from repro.sampling.engine import SampledCampaignEngine, SampledSettings
from repro.sampling.roster import (
    resolve_roster,
    roster_display_name,
    roster_sizes,
)

BENCH_DIR = Path(__file__).resolve().parent / "bench"
MULT16 = BENCH_DIR / "mult16.bench"


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Campaign caches are keyed by scale *name*; isolate every test."""
    clear_campaign_caches()
    yield
    clear_campaign_caches()


@pytest.fixture
def scale():
    return get_scale("ci")


class TestRouting:
    def test_explicit_mode_argument(self, scale):
        campaign = stuck_at_campaign("c17", scale, mode="sampled")
        assert campaign.exact is False
        assert campaign.strata
        assert ("c17", "ci", "sampled") in campaigns._stuck_cache
        for record in campaign.results:
            assert record.ci_low is not None
            assert record.ci_high is not None
            assert record.patterns_spent is not None
            assert record.stratum is not None

    def test_scale_mode_field(self, scale):
        sampled_scale = dataclasses.replace(scale, mode="sampled")
        campaign = stuck_at_campaign("c17", sampled_scale)
        assert campaign.exact is False
        assert campaign.results[0].ci_low is not None

    def test_env_mode(self, scale, monkeypatch):
        monkeypatch.setenv("REPRO_MODE", "sampled")
        assert scale.effective_mode() == "sampled"
        assert _resolve_routing(scale, None, None) == "sampled"

    def test_sampled_supersedes_engine(self, scale):
        assert _resolve_routing(scale, "bitparallel", "sampled") == "sampled"
        assert _resolve_routing(scale, "dp", "sampled") == "sampled"

    def test_exact_mode_routes_to_engine(self, scale):
        assert _resolve_routing(scale, "dp", "exact") == "dp"
        assert _resolve_routing(scale, "bitparallel", "exact") == "bitparallel"

    def test_unknown_mode_raises(self, scale):
        with pytest.raises(KeyError, match="unknown campaign mode"):
            _resolve_routing(scale, None, "approximate")

    def test_mode_and_engine_cache_keys_are_distinct(self, scale):
        sampled = stuck_at_campaign("c17", scale, mode="sampled")
        exact = stuck_at_campaign("c17", scale, mode="exact")
        assert ("c17", "ci", "sampled") in campaigns._stuck_cache
        assert ("c17", "ci", "dp") in campaigns._stuck_cache
        assert exact.exact is True
        assert sampled.exact is False


class TestShardInvariance:
    def test_chunk_size_never_changes_results(self, scale):
        """Pattern substreams are keyed by round, never shard: any
        chunking of the fault list merges to the identical records."""
        circuit = get_circuit("c17")
        faults = collapsed_checkpoint_faults(circuit)
        serial = campaigns._run(
            circuit, "c17", scale, faults, False, engine="sampled"
        )
        for chunk_size in (1, 3, 7, len(faults)):
            sharded = parallel.run_campaign(
                circuit,
                "c17",
                scale,
                faults,
                bridging=False,
                n_workers=1,
                chunk_size=chunk_size,
                engine="sampled",
            )
            assert sharded.results == serial.results
            assert sharded.exact is False

    def test_process_pool_matches_serial(self, scale):
        circuit = get_circuit("c17")
        faults = collapsed_checkpoint_faults(circuit)
        serial = campaigns._run(
            circuit, "c17", scale, faults, False, engine="sampled"
        )
        pooled = parallel.run_campaign(
            circuit,
            "c17",
            scale,
            faults,
            bridging=False,
            n_workers=2,
            chunk_size=5,
            engine="sampled",
        )
        assert pooled.results == serial.results
        assert len(pooled.chunk_stats) == 4

    def test_sampled_mode_is_not_clamped_to_serial(self, scale):
        """Unlike the plain bitparallel engine, sampled campaigns may
        fan out: only ``engine == "bitparallel"`` forces one worker."""
        circuit = get_circuit("c95")
        faults = collapsed_checkpoint_faults(circuit)
        requested = parallel.effective_workers(2, circuit, len(faults))
        assert requested == 2


class TestSequentialStopping:
    def test_round_sizes_double_cumulatively(self):
        assert SampledSettings().round_sizes() == [256, 256, 512, 1024, 2048]
        assert SampledSettings(pattern_budget=1000).round_sizes() == [
            256,
            256,
            488,
        ]
        assert SampledSettings(pattern_budget=100).round_sizes() == [100]

    def test_invalid_budgets_raise(self):
        with pytest.raises(ValueError):
            SampledSettings(pattern_budget=0).round_sizes()
        with pytest.raises(ValueError):
            SampledSettings(initial_patterns=0).round_sizes()

    def test_spent_lands_on_round_boundaries(self):
        circuit = get_circuit("c17")
        faults = collapsed_checkpoint_faults(circuit)
        settings = SampledSettings(seed=0)
        records = SampledCampaignEngine(circuit, "c17", settings).run(faults)
        legal = set()
        cumulative = 0
        for size in settings.round_sizes():
            cumulative += size
            legal.add(cumulative)
        for record in records:
            assert record.patterns_spent in legal

    def test_unresolved_faults_exhaust_exactly_the_budget(self):
        """A target no mid-detectability fault can meet forces the full
        budget — the stopping rule must never stop early or overshoot."""
        circuit = get_circuit("c17")
        faults = collapsed_checkpoint_faults(circuit)
        settings = SampledSettings(seed=0, ci_width=0.005, pattern_budget=512)
        records = SampledCampaignEngine(circuit, "c17", settings).run(faults)
        unresolved = [
            r
            for r in records
            if (r.ci_high - r.ci_low) / 2 > settings.ci_width
        ]
        assert unresolved, "expected some fault to miss a 0.005 half-width"
        for record in unresolved:
            assert record.patterns_spent == settings.pattern_budget

    def test_easy_faults_retire_in_the_first_round(self):
        """Undetectable and always-detected faults close their interval
        immediately; the budget concentrates on the uncertain middle."""
        circuit = get_circuit("c17")
        faults = collapsed_checkpoint_faults(circuit)
        settings = SampledSettings(seed=0)
        records = SampledCampaignEngine(circuit, "c17", settings).run(faults)
        for record in records:
            if record.detectability in (0, 1):
                assert record.patterns_spent == settings.initial_patterns


class TestRoster:
    def test_builtins_pass_through(self):
        assert resolve_roster(["c17", "c432"]) == ["c17", "c432"]

    def test_bench_paths_resolve_absolute(self):
        (entry,) = resolve_roster([str(MULT16)])
        assert Path(entry).is_absolute()
        assert roster_display_name(entry) == "mult16"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="neither a built-in"):
            resolve_roster(["c9999"])

    def test_missing_bench_file_raises(self):
        with pytest.raises(FileNotFoundError):
            resolve_roster(["no/such/file.bench"])

    def test_roster_sizes_reports_external_netlists(self):
        ((name, inputs, size),) = roster_sizes([str(MULT16)])
        assert name == "mult16"
        assert inputs == 32
        assert size > get_circuit("c1908").netlist_size


class TestMult16Fixture:
    def test_committed_bench_matches_its_generator(self):
        """The fixture cannot drift: rebuilding the multiplier from the
        committed generator yields the identical netlist."""
        import sys

        sys.path.insert(0, str(BENCH_DIR))
        try:
            from generate_mult16 import build_mult16
        finally:
            sys.path.remove(str(BENCH_DIR))
        from repro.circuit.iscas import parse_bench_file

        built = build_mult16()
        parsed = parse_bench_file(MULT16)
        assert parsed.inputs == built.inputs
        assert parsed.outputs == built.outputs
        # The parser may topologically re-order gate lines; the netlist
        # contents (names, types, fanins) must still match exactly.
        assert {g.name: g for g in parsed.gates()} == {
            g.name: g for g in built.gates()
        }

    def test_multiplies(self):
        from repro.circuit.iscas import parse_bench_file

        circuit = parse_bench_file(MULT16)
        x, y = 51234, 40321
        assignment = {f"a{i}": bool((x >> i) & 1) for i in range(16)}
        assignment |= {f"b{j}": bool((y >> j) & 1) for j in range(16)}
        outputs = circuit.evaluate_outputs(assignment)
        value = sum(1 << k for k in range(32) if outputs[f"p{k}"])
        assert value == x * y

    def test_end_to_end_sampled_campaign_never_touches_obdd(self, scale):
        """Acceptance criterion: a committed workload bigger than any
        built-in completes the sampled pipeline — strata, intervals,
        telemetry — with the exact OBDD path left cold."""
        (entry,) = resolve_roster([str(MULT16)])
        workload = dataclasses.replace(
            scale,
            stuck_at_samples={entry: 12},
            pattern_budget=1024,
        )
        campaign = stuck_at_campaign(entry, workload, mode="sampled")
        assert campaigns._functions_cache == {}  # no OBDD was built
        assert len(campaign.results) == 12
        assert campaign.exact is False
        assert campaign.patterns_spent() >= 12 * 256
        summary = campaign.ci_width_summary()
        assert summary["count"] == 12
        for record in campaign.results:
            assert 0.0 <= record.ci_low <= record.ci_high <= 1.0


class TestCLI:
    def test_writes_the_campaign_artifact(self, tmp_path, monkeypatch):
        from repro.sampling.__main__ import SCHEMA, main

        monkeypatch.setenv("REPRO_MODE", "exact")  # restored after
        monkeypatch.setenv("REPRO_PATTERN_BUDGET", "4096")
        rc = main(
            [
                "c17",
                "--out",
                str(tmp_path),
                "--budget",
                "512",
                "--faults",
                "10",
            ]
        )
        assert rc == 0
        document = json.loads(
            (tmp_path / "c17_sampled.json").read_text(encoding="utf-8")
        )
        assert document["schema"] == SCHEMA
        assert document["mode"] == "sampled"
        assert document["circuit"] == "c17"
        assert document["num_faults"] == 10
        assert document["settings"]["pattern_budget"] == 512
        assert len(document["faults"]) == 10
        assert document["strata"]
        assert "sampling.patterns_spent" in document["metrics"]["counters"]
        assert document["manifest"]
        record = document["faults"][0]
        assert {"fault", "stratum", "ci_low", "ci_high", "patterns_spent"} <= (
            set(record)
        )

    def test_rejects_bad_flags(self, tmp_path):
        from repro.sampling.__main__ import main

        with pytest.raises(SystemExit):
            main(["c17", "--ci-width", "0.9", "--out", str(tmp_path)])
        with pytest.raises(SystemExit):
            main(["c17", "--budget", "0", "--out", str(tmp_path)])
        with pytest.raises(SystemExit):
            main(["nonexistent", "--out", str(tmp_path)])
