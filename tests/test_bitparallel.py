"""Bit-parallel kernel: engine routing, campaign parity, metrics.

The packing/batching property suite lives in
``tests/test_bitparallel_packing.py``; the engine's bit-exactness
against the committed truth is in ``tests/test_golden_detectability.py``.
This module covers the wiring *around* the kernel: the
``Scale.engine`` / ``$REPRO_ENGINE`` routing, campaign-cache keying,
dp-vs-bitparallel campaign parity on an exhaustive circuit, the
sampled Monte-Carlo path beyond the exhaustive frontier, and the
words-simulated / batch telemetry the obs layer exports.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from repro.benchcircuits import get_circuit  # noqa: E402
from repro.experiments import campaigns  # noqa: E402
from repro.experiments.config import (  # noqa: E402
    CAMPAIGN_ENGINES,
    env_engine,
    get_scale,
)
from repro.faults.bridging import BridgeKind  # noqa: E402


@pytest.fixture(autouse=True)
def _fresh_caches():
    campaigns.clear_campaign_caches()
    yield
    campaigns.clear_campaign_caches()


SCALE = get_scale("ci")


# ----------------------------------------------------------------------
# Engine routing
# ----------------------------------------------------------------------
def test_campaign_engines_roster():
    assert CAMPAIGN_ENGINES == ("dp", "bitparallel")


def test_env_engine_defaults_to_dp(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert env_engine() == "dp"
    monkeypatch.setenv("REPRO_ENGINE", "  ")
    assert env_engine() == "dp"


def test_env_engine_reads_environment(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "bitparallel")
    assert env_engine() == "bitparallel"


def test_env_engine_rejects_unknown(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "quantum")
    with pytest.raises(KeyError):
        env_engine()


def test_scale_engine_field_wins_over_environment(monkeypatch):
    import dataclasses

    monkeypatch.setenv("REPRO_ENGINE", "bitparallel")
    assert SCALE.effective_engine() == "bitparallel"
    pinned = dataclasses.replace(SCALE, engine="dp")
    assert pinned.effective_engine() == "dp"


def test_campaign_rejects_unknown_engine():
    with pytest.raises(KeyError):
        campaigns.stuck_at_campaign("c17", SCALE, engine="quantum")


def test_experiments_cli_accepts_engine_flag(capsys):
    from repro.experiments.cli import main

    assert main(["--engine", "bitparallel", "--list"]) == 0
    assert "fig" in capsys.readouterr().out


def test_verify_cli_rejects_unknown_env_engine(monkeypatch):
    from repro.verify.__main__ import main

    monkeypatch.setenv("REPRO_ENGINE", "quantum")
    with pytest.raises(SystemExit):
        main(["--circuits", "c17"])


# ----------------------------------------------------------------------
# Campaign parity and caching
# ----------------------------------------------------------------------
def test_campaign_cache_keys_engines_separately(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    dp = campaigns.stuck_at_campaign("c17", SCALE, engine="dp")
    bp = campaigns.stuck_at_campaign("c17", SCALE, engine="bitparallel")
    assert ("c17", "ci", "dp") in campaigns._stuck_cache
    assert ("c17", "ci", "bitparallel") in campaigns._stuck_cache
    # cache hit returns the same object per engine
    assert campaigns.stuck_at_campaign("c17", SCALE, engine="dp") is dp
    assert (
        campaigns.stuck_at_campaign("c17", SCALE, engine="bitparallel")
        is bp
    )


@pytest.mark.parametrize("kind", [None, BridgeKind.AND])
def test_bitparallel_campaign_matches_dp_exactly(kind):
    """Inside the exhaustive frontier the kernel is a drop-in: every
    scalar record — detectability, bound, PO set — is identical."""
    if kind is None:
        dp = campaigns.stuck_at_campaign("c95", SCALE, engine="dp")
        bp = campaigns.stuck_at_campaign(
            "c95", SCALE, engine="bitparallel"
        )
    else:
        dp = campaigns.bridging_campaign("c95", kind, SCALE, engine="dp")
        bp = campaigns.bridging_campaign(
            "c95", kind, SCALE, engine="bitparallel"
        )
    assert bp.exact and dp.exact
    assert len(bp.results) == len(dp.results)
    for ours, ref in zip(bp.results, dp.results):
        assert ours.fault == ref.fault
        assert ours.detectability == ref.detectability
        assert ours.upper_bound == ref.upper_bound
        assert ours.observable_pos == ref.observable_pos


def test_sampled_campaign_beyond_exhaustive_frontier():
    """c432 (36 inputs) runs the Monte-Carlo path: inexact, every
    fault covered, detectabilities normalized over the sample size."""
    result = campaigns.stuck_at_campaign("c432", SCALE, engine="bitparallel")
    circuit = get_circuit("c432")
    assert circuit.num_inputs > campaigns.BITPARALLEL_EXHAUSTIVE_LIMIT
    assert not result.exact
    assert len(result.results) > 400
    for record in result.results:
        assert (
            record.detectability.denominator
            <= campaigns.BITPARALLEL_SAMPLE_VECTORS
        )
        assert 0 <= record.detectability <= 1
        assert record.stuck_at_equivalent is None


def test_bitparallel_campaign_exports_kernel_telemetry():
    result = campaigns.stuck_at_campaign("c95", SCALE, engine="bitparallel")
    stats = result.chunk_stats
    assert stats
    total_words = sum(stat.words_simulated for stat in stats)
    total_batches = sum(stat.batches for stat in stats)
    assert total_words > 0
    assert total_batches >= 1
    for stat in stats:
        assert stat.batch_size > 0
        registry = stat.to_metrics()
        assert (
            registry.counter_value("sim.words_simulated")
            == stat.words_simulated
        )
        assert registry.counter_value("sim.batches") == stat.batches
        assert registry.gauge_value("sim.batch_size") == stat.batch_size


def test_dp_campaign_reports_no_kernel_telemetry():
    result = campaigns.stuck_at_campaign("c95", SCALE, engine="dp")
    for stat in result.chunk_stats:
        assert stat.words_simulated == 0
        assert stat.batches == 0


def test_telemetry_report_names_the_engine():
    campaigns.stuck_at_campaign("c95", SCALE, engine="bitparallel")
    lines = campaigns.telemetry_report()
    assert any("bitparallel" in line for line in lines)
