"""Deductive fault simulation versus the exhaustive oracle."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings

from repro.faults.bridging import BridgeKind, BridgingFault
from repro.faults.stuck_at import all_stuck_at_faults, collapsed_checkpoint_faults
from repro.simulation.deductive import DeductiveFaultSimulator
from repro.simulation.truthtable import TruthTableSimulator

from tests.strategies import circuits


def _oracle_detected(simulator, faults, vector_index):
    return frozenset(
        f
        for f in faults
        if (simulator.detection_word(f) >> vector_index) & 1
    )


class TestAgainstExhaustive:
    @pytest.mark.parametrize("circuit_name", ["c17", "fulladder"])
    def test_every_vector_every_fault(self, circuit_name, request):
        circuit = request.getfixturevalue(circuit_name)
        faults = all_stuck_at_faults(circuit)
        deductive = DeductiveFaultSimulator(circuit, faults)
        exhaustive = TruthTableSimulator(circuit)
        for index in range(exhaustive.num_vectors):
            assignment = exhaustive.assignment_for(index)
            assert deductive.detected(assignment) == _oracle_detected(
                exhaustive, faults, index
            )

    def test_sampled_vectors_on_c95(self, c95):
        faults = collapsed_checkpoint_faults(c95)
        deductive = DeductiveFaultSimulator(c95, faults)
        exhaustive = TruthTableSimulator(c95)
        rng = random.Random(0)
        for _ in range(40):
            index = rng.randrange(exhaustive.num_vectors)
            assignment = exhaustive.assignment_for(index)
            assert deductive.detected(assignment) == _oracle_detected(
                exhaustive, faults, index
            )

    def test_campaign_union(self, c17):
        faults = all_stuck_at_faults(c17)
        deductive = DeductiveFaultSimulator(c17, faults)
        exhaustive = TruthTableSimulator(c17)
        vectors = [exhaustive.assignment_for(i) for i in (0, 7, 21, 31)]
        expected = frozenset()
        for i in (0, 7, 21, 31):
            expected |= _oracle_detected(exhaustive, faults, i)
        assert deductive.campaign(vectors) == expected


class TestInterface:
    def test_rejects_bridges(self, c17):
        with pytest.raises(TypeError):
            DeductiveFaultSimulator(
                c17, [BridgingFault("G1", "G2", BridgeKind.AND)]
            )

    def test_rejects_unknown_lines(self, c17):
        from repro.faults.lines import Line
        from repro.faults.stuck_at import StuckAtFault

        with pytest.raises(Exception):
            DeductiveFaultSimulator(c17, [StuckAtFault(Line("nope"), True)])

    def test_branch_faults_stay_on_their_pin(self, c17):
        """The branch list must differ from the stem list on fanout nets."""
        from repro.faults.lines import Line
        from repro.faults.stuck_at import StuckAtFault

        stem = StuckAtFault(Line("G11"), True)
        branch = StuckAtFault(Line("G11", "G16", 1), True)
        deductive = DeductiveFaultSimulator(c17, [stem, branch])
        exhaustive = TruthTableSimulator(c17)
        differing = 0
        for index in range(exhaustive.num_vectors):
            assignment = exhaustive.assignment_for(index)
            detected = deductive.detected(assignment)
            expected = _oracle_detected(exhaustive, [stem, branch], index)
            assert detected == expected
            if (stem in detected) != (branch in detected):
                differing += 1
        assert differing > 0  # the two faults are genuinely different


@settings(max_examples=25, deadline=None)
@given(circuits(max_inputs=4, max_gates=12))
def test_deductive_matches_exhaustive_on_random_circuits(circuit):
    faults = all_stuck_at_faults(circuit)
    deductive = DeductiveFaultSimulator(circuit, faults)
    exhaustive = TruthTableSimulator(circuit)
    for index in range(exhaustive.num_vectors):
        assignment = exhaustive.assignment_for(index)
        assert deductive.detected(assignment) == _oracle_detected(
            exhaustive, faults, index
        )
