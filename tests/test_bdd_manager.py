"""Unit tests for the ROBDD manager."""

from __future__ import annotations

import pytest

from repro.bdd.manager import BDDError, BDDManager, FALSE, TRUE


class TestVariables:
    def test_declared_order_is_preserved(self):
        m = BDDManager(["x", "y", "z"])
        assert m.var_names == ("x", "y", "z")
        assert m.level_of("x") == 0
        assert m.level_of("z") == 2

    def test_add_var_appends(self):
        m = BDDManager(["x"])
        assert m.add_var("y") == 1
        assert m.var_names == ("x", "y")

    def test_duplicate_variable_rejected(self):
        m = BDDManager(["x"])
        with pytest.raises(BDDError):
            m.add_var("x")

    def test_unknown_variable_rejected(self):
        m = BDDManager(["x"])
        with pytest.raises(BDDError):
            m.var("nope")

    def test_var_and_nvar_are_complements(self):
        m = BDDManager(["x"])
        assert m.apply_not(m.var("x")) == m.nvar("x")


class TestReduction:
    def test_same_function_same_node(self):
        m = BDDManager(["a", "b"])
        f = m.apply_and(m.var("a"), m.var("b"))
        g = m.apply_and(m.var("b"), m.var("a"))
        assert f == g

    def test_redundant_test_removed(self):
        m = BDDManager(["a", "b"])
        a = m.var("a")
        # ite(b, a, a) must collapse to a — no node tests b.
        assert m.ite(m.var("b"), a, a) == a

    def test_terminal_identities(self):
        m = BDDManager(["a"])
        a = m.var("a")
        assert m.apply_and(a, TRUE) == a
        assert m.apply_and(a, FALSE) == FALSE
        assert m.apply_or(a, FALSE) == a
        assert m.apply_or(a, TRUE) == TRUE
        assert m.apply_xor(a, FALSE) == a
        assert m.apply_xor(a, a) == FALSE

    def test_children_are_strictly_lower(self):
        m = BDDManager(["a", "b", "c"])
        f = m.apply_or(m.apply_and(m.var("a"), m.var("c")), m.var("b"))
        stack = [f]
        seen = set()
        while stack:
            u = stack.pop()
            if u <= TRUE or u in seen:
                continue
            seen.add(u)
            for child in (m.low(u), m.high(u)):
                if child > TRUE:
                    assert m.level(child) > m.level(u)
                stack.append(child)


class TestOperators:
    def test_de_morgan(self):
        m = BDDManager(["a", "b"])
        a, b = m.var("a"), m.var("b")
        assert m.apply_not(m.apply_and(a, b)) == m.apply_or(
            m.apply_not(a), m.apply_not(b)
        )

    def test_xor_via_ite(self):
        m = BDDManager(["a", "b"])
        a, b = m.var("a"), m.var("b")
        assert m.apply_xor(a, b) == m.ite(a, m.apply_not(b), b)

    def test_implies(self):
        m = BDDManager(["a", "b"])
        a, b = m.var("a"), m.var("b")
        assert m.apply_implies(a, b) == m.apply_or(m.apply_not(a), b)

    def test_nand_nor_xnor(self):
        m = BDDManager(["a", "b"])
        a, b = m.var("a"), m.var("b")
        assert m.apply_nand(a, b) == m.apply_not(m.apply_and(a, b))
        assert m.apply_nor(a, b) == m.apply_not(m.apply_or(a, b))
        assert m.apply_xnor(a, b) == m.apply_not(m.apply_xor(a, b))

    def test_double_negation(self):
        m = BDDManager(["a", "b"])
        f = m.apply_and(m.var("a"), m.var("b"))
        assert m.apply_not(m.apply_not(f)) == f


class TestRestrictQuantifyCompose:
    def test_restrict_shannon(self):
        m = BDDManager(["a", "b", "c"])
        f = m.apply_or(m.apply_and(m.var("a"), m.var("b")), m.var("c"))
        f1 = m.restrict(f, "a", True)
        f0 = m.restrict(f, "a", False)
        rebuilt = m.ite(m.var("a"), f1, f0)
        assert rebuilt == f

    def test_exists_is_or_of_cofactors(self):
        m = BDDManager(["a", "b"])
        f = m.apply_xor(m.var("a"), m.var("b"))
        assert m.exists(f, ["a"]) == m.apply_or(
            m.restrict(f, "a", False), m.restrict(f, "a", True)
        )

    def test_forall_is_and_of_cofactors(self):
        m = BDDManager(["a", "b"])
        f = m.apply_or(m.var("a"), m.var("b"))
        assert m.forall(f, ["a"]) == m.apply_and(
            m.restrict(f, "a", False), m.restrict(f, "a", True)
        )

    def test_compose_replaces_variable(self):
        m = BDDManager(["a", "b", "c"])
        f = m.apply_and(m.var("a"), m.var("b"))
        g = m.apply_or(m.var("b"), m.var("c"))
        composed = m.compose(f, "a", g)
        assert composed == m.apply_and(g, m.var("b"))

    def test_compose_with_higher_variable(self):
        # Substituting a function of an *earlier* variable into a later
        # slot must keep the result ordered and correct.
        m = BDDManager(["a", "b", "c"])
        f = m.apply_and(m.var("b"), m.var("c"))
        composed = m.compose(f, "c", m.var("a"))
        assert composed == m.apply_and(m.var("b"), m.var("a"))


class TestCounting:
    def test_satcount_basics(self):
        m = BDDManager(["a", "b", "c"])
        assert m.satcount(FALSE) == 0
        assert m.satcount(TRUE) == 8
        assert m.satcount(m.var("a")) == 4
        assert m.satcount(m.apply_and(m.var("a"), m.var("b"))) == 2

    def test_satcount_extra_free_vars(self):
        m = BDDManager(["a"])
        assert m.satcount(m.var("a"), nvars=3) == 4

    def test_satcount_rejects_too_few_vars(self):
        m = BDDManager(["a", "b"])
        with pytest.raises(BDDError):
            m.satcount(m.var("a"), nvars=1)

    def test_satcount_memo_survives_new_nodes(self):
        m = BDDManager(["a", "b", "c"])
        f = m.apply_or(m.var("a"), m.var("b"))
        assert m.satcount(f) == 6
        g = m.apply_and(f, m.var("c"))
        assert m.satcount(g) == 3
        assert m.satcount(f) == 6

    def test_satcount_memo_invalidated_by_add_var(self):
        m = BDDManager(["a"])
        f = m.var("a")
        assert m.satcount(f) == 1
        m.add_var("b")
        assert m.satcount(f) == 2

    def test_support(self):
        m = BDDManager(["a", "b", "c"])
        f = m.apply_and(m.var("a"), m.var("c"))
        assert m.support(f) == frozenset({"a", "c"})
        assert m.support(TRUE) == frozenset()

    def test_node_count(self):
        m = BDDManager(["a", "b"])
        assert m.node_count(TRUE) == 1
        assert m.node_count(m.var("a")) == 3  # node + two terminals


class TestWitnesses:
    def test_pick_minterm_satisfies(self):
        m = BDDManager(["a", "b", "c"])
        f = m.apply_and(m.var("a"), m.apply_not(m.var("c")))
        assignment = m.pick_minterm(f)
        assert assignment is not None
        assert m.evaluate(f, assignment)

    def test_pick_minterm_of_false(self):
        m = BDDManager(["a"])
        assert m.pick_minterm(FALSE) is None

    def test_minterms_enumerates_exactly(self):
        m = BDDManager(["a", "b", "c"])
        f = m.apply_xor(m.var("a"), m.var("b"))
        minterms = list(m.minterms(f))
        assert len(minterms) == m.satcount(f)
        assert all(m.evaluate(f, a) for a in minterms)

    def test_minterms_limit(self):
        m = BDDManager(["a", "b", "c"])
        assert len(list(m.minterms(TRUE, limit=3))) == 3

    def test_evaluate_missing_variable(self):
        m = BDDManager(["a", "b"])
        with pytest.raises(BDDError):
            m.evaluate(m.var("b"), {"a": True})


class TestBulkHelpers:
    def test_cube(self):
        m = BDDManager(["a", "b", "c"])
        cube = m.cube({"a": True, "c": False})
        assert m.satcount(cube) == 2

    def test_disjoin_conjoin(self):
        m = BDDManager(["a", "b"])
        a, b = m.var("a"), m.var("b")
        assert m.disjoin([a, b]) == m.apply_or(a, b)
        assert m.conjoin([a, b]) == m.apply_and(a, b)
        assert m.disjoin([]) == FALSE
        assert m.conjoin([]) == TRUE

    def test_clear_caches_preserves_results(self):
        m = BDDManager(["a", "b"])
        f = m.apply_and(m.var("a"), m.var("b"))
        m.clear_caches()
        assert m.apply_and(m.var("a"), m.var("b")) == f
