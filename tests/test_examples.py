"""The shipped examples must run clean (they are executable docs)."""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "complete test set size" in out
    assert "detecting vectors" in out


def test_atpg_testset(capsys):
    out = _run("atpg_testset.py", capsys)
    assert "compact test set" in out
    assert "100.0%" in out


def test_bridging_analysis(capsys):
    out = _run("bridging_analysis.py", capsys)
    assert "AND bridges" in out and "OR bridges" in out
    assert "double stuck-at in disguise" in out


def test_dft_advisor(capsys):
    out = _run("dft_advisor.py", capsys)
    assert "inserting observation points" in out
    assert "mean detectability" in out


def test_fault_diagnosis(capsys):
    out = _run("fault_diagnosis.py", capsys)
    assert "full-response diagnosis" in out
    assert "<-- injected" in out


def test_every_example_is_covered():
    """Adding an example without a smoke test here should fail loudly."""
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    covered = {
        "quickstart.py",
        "atpg_testset.py",
        "bridging_analysis.py",
        "dft_advisor.py",
        "fault_diagnosis.py",
    }
    assert scripts == covered
