"""PODEM versus the exact oracles — the conventional-ATPG baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.atpg import Podem, PodemStatus
from repro.atpg.values import Value3, and3, eval_gate3, not3, or3, xor3
from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.core.engine import DifferencePropagation
from repro.faults.lines import Line
from repro.faults.stuck_at import StuckAtFault, all_stuck_at_faults
from repro.simulation.truthtable import TruthTableSimulator

from tests.strategies import circuits


class TestValues3:
    def test_not3(self):
        assert not3(Value3.ZERO) is Value3.ONE
        assert not3(Value3.ONE) is Value3.ZERO
        assert not3(Value3.X) is Value3.X
        assert ~Value3.ZERO is Value3.ONE

    def test_and3(self):
        assert and3([Value3.ZERO, Value3.X]) is Value3.ZERO
        assert and3([Value3.ONE, Value3.ONE]) is Value3.ONE
        assert and3([Value3.ONE, Value3.X]) is Value3.X

    def test_or3(self):
        assert or3([Value3.ONE, Value3.X]) is Value3.ONE
        assert or3([Value3.ZERO, Value3.ZERO]) is Value3.ZERO
        assert or3([Value3.ZERO, Value3.X]) is Value3.X

    def test_xor3(self):
        assert xor3([Value3.ONE, Value3.ZERO]) is Value3.ONE
        assert xor3([Value3.ONE, Value3.ONE]) is Value3.ZERO
        assert xor3([Value3.ONE, Value3.X]) is Value3.X

    def test_eval_gate3_consistency_with_bool(self):
        import itertools

        from repro.circuit.gates import eval_gate

        for gate_type in (
            GateType.AND,
            GateType.NAND,
            GateType.OR,
            GateType.NOR,
            GateType.XOR,
            GateType.XNOR,
        ):
            for values in itertools.product([False, True], repeat=2):
                three = eval_gate3(
                    gate_type, [Value3.of(v) for v in values]
                )
                assert three is Value3.of(eval_gate(gate_type, values))

    def test_of(self):
        assert Value3.of(True) is Value3.ONE
        assert Value3.of(False) is Value3.ZERO


class TestPodemOnBenchmarks:
    @pytest.mark.parametrize("circuit_name", ["c17", "fulladder", "c95"])
    def test_complete_and_sound(self, circuit_name, request):
        """PODEM finds a (valid) test exactly for the detectable faults."""
        circuit = request.getfixturevalue(circuit_name)
        podem = Podem(circuit)
        simulator = TruthTableSimulator(circuit)
        for fault in all_stuck_at_faults(circuit):
            result = podem.generate(fault)
            assert result.status is not PodemStatus.ABORTED
            assert result.found == simulator.is_detectable(fault)
            if result.found:
                vector = sum(
                    1 << i
                    for i, net in enumerate(circuit.inputs)
                    if result.test[net]
                )
                assert (simulator.detection_word(fault) >> vector) & 1

    def test_found_test_is_in_dp_complete_test_set(self, alu181):
        engine = DifferencePropagation(alu181)
        podem = Podem(alu181)
        for fault in all_stuck_at_faults(alu181)[::23]:
            result = podem.generate(fault)
            analysis = engine.analyze(fault)
            assert result.found == analysis.is_detectable
            if result.found:
                assert analysis.tests.evaluate(result.test)

    def test_proves_redundancy(self):
        b = CircuitBuilder("red")
        a, bb = b.inputs("a", "b")
        conj = b.and_(a, bb, name="conj")
        b.output(b.or_(a, conj, name="y"))
        podem = Podem(b.build())
        result = podem.generate(StuckAtFault(Line("conj"), False))
        assert result.status is PodemStatus.UNDETECTABLE
        assert result.test is None

    def test_branch_fault(self, c17):
        podem = Podem(c17)
        simulator = TruthTableSimulator(c17)
        fault = StuckAtFault(Line("G11", "G16", 1), True)
        result = podem.generate(fault)
        assert result.found
        vector = sum(
            1 << i for i, net in enumerate(c17.inputs) if result.test[net]
        )
        assert (simulator.detection_word(fault) >> vector) & 1

    def test_statistics_reported(self, c17):
        podem = Podem(c17)
        result = podem.generate(StuckAtFault(Line("G1"), True))
        assert result.decisions >= 1
        assert result.backtracks >= 0

    def test_rejects_non_stuck_at(self, c17):
        from repro.faults.bridging import BridgeKind, BridgingFault

        podem = Podem(c17)
        with pytest.raises(TypeError):
            podem.generate(BridgingFault("G1", "G2", BridgeKind.AND))

    def test_invalid_line_rejected(self, c17):
        podem = Podem(c17)
        with pytest.raises(Exception):
            podem.generate(StuckAtFault(Line("nope"), True))

    def test_backtrack_limit_aborts(self):
        # A tiny limit on a hard-ish circuit must abort, not loop.
        from repro.benchcircuits import get_circuit

        circuit = get_circuit("alu181")
        podem = Podem(circuit, backtrack_limit=0)
        statuses = {
            podem.generate(fault).status
            for fault in all_stuck_at_faults(circuit)[:40]
        }
        # Everything either solves without backtracking or aborts.
        assert PodemStatus.UNDETECTABLE not in statuses


@settings(max_examples=25, deadline=None)
@given(circuits(max_inputs=4, max_gates=12))
def test_podem_agrees_with_brute_force_on_random_circuits(circuit):
    """Completeness + soundness on arbitrary random circuits."""
    podem = Podem(circuit)
    simulator = TruthTableSimulator(circuit)
    for fault in all_stuck_at_faults(circuit)[::3]:
        result = podem.generate(fault)
        assert result.status is not PodemStatus.ABORTED
        assert result.found == simulator.is_detectable(fault)
        if result.found:
            vector = sum(
                1 << i
                for i, net in enumerate(circuit.inputs)
                if result.test[net]
            )
            assert (simulator.detection_word(fault) >> vector) & 1


class TestAtpgFlow:
    def test_full_flow_on_c95(self, c95):
        from repro.atpg import run_atpg_flow
        from repro.faults.stuck_at import collapsed_checkpoint_faults

        faults = collapsed_checkpoint_faults(c95)
        result = run_atpg_flow(c95, faults)
        assert not result.aborted
        assert not result.redundant  # the adder is irredundant
        assert set(result.detected) == set(faults)
        assert result.coverage == 1.0
        # Fault-simulation dropping must save generation calls.
        assert result.generation_calls < len(faults)
        assert len(result.tests) == result.generation_calls
        # Verify the test set by exhaustive simulation.
        simulator = TruthTableSimulator(c95)
        vectors = [
            sum(1 << i for i, net in enumerate(c95.inputs) if t[net])
            for t in result.tests
        ]
        for fault in faults:
            word = simulator.detection_word(fault)
            assert any((word >> v) & 1 for v in vectors)

    def test_flow_reports_redundancies(self):
        from repro.atpg import run_atpg_flow
        from repro.faults.stuck_at import all_stuck_at_faults

        b = CircuitBuilder("red")
        a, bb = b.inputs("a", "b")
        conj = b.and_(a, bb, name="conj")
        b.output(b.or_(a, conj, name="y"))
        circuit = b.build()
        result = run_atpg_flow(circuit, all_stuck_at_faults(circuit))
        assert result.redundant
        assert result.coverage == 1.0

    def test_flow_on_wide_circuit(self):
        """36 inputs: the flow must work where exhaustive words cannot."""
        from repro.atpg import run_atpg_flow
        from repro.benchcircuits import get_circuit
        from repro.faults.stuck_at import collapsed_checkpoint_faults
        from repro.simulation.single import detects

        circuit = get_circuit("c432")
        faults = collapsed_checkpoint_faults(circuit)[:60]
        result = run_atpg_flow(circuit, faults)
        assert not result.aborted
        assert set(result.detected) | set(result.redundant) == set(faults)
        for fault in result.detected:
            assert any(detects(circuit, t, fault) for t in result.tests)


class TestRegressions:
    def test_side_input_with_unknown_faulty_plane(self):
        """Regression: the objective must also target side inputs whose
        *faulty* plane is unknown (good plane already implied).

        Found by the integration property suite: g0 = NOR(i1, i0),
        g1 = NOR(g0, i0); i0 s-a-0 needs i1=1 to clear g1's side input
        on the faulty plane, but good(g0) is already 0 under i0=1."""
        from repro.circuit.iscas import parse_bench

        circuit = parse_bench(
            "INPUT(i0)\nINPUT(i1)\nOUTPUT(g1)\n"
            "g0 = NOR(i1, i0)\ng1 = NOR(g0, i0)"
        )
        result = Podem(circuit).generate(StuckAtFault(Line("i0"), False))
        assert result.found
        assert result.test == {"i0": True, "i1": True}
