"""Dashboard: collection over a results tree and standalone rendering."""

from __future__ import annotations

import json

import pytest

from repro.obs import dashboard, store
from repro.obs.bench import write_bench_artifact
from repro.obs.manifest import RunManifest


@pytest.fixture
def results_tree(tmp_path):
    """A miniature results/ tree exercising every dashboard section."""
    results = tmp_path / "results"
    results.mkdir()

    # ledger with two recorded runs
    ledger = store.RunLedger(results / "ledger")
    for i, circuit in enumerate(("c17", "c432")):
        ledger.put(
            store.run_key({"circuit": circuit}),
            {"schema": "x/1", "n": i},
            meta={
                "circuit": circuit,
                "model": "stuck-at",
                "routing": "dp",
                "seed": 0,
                "num_faults": 10 * (i + 1),
                "num_detectable": 9,
                "seconds": 0.25,
            },
        )

    # a perf trajectory with two runs of one gated metric
    history = results / "history"
    history.mkdir()
    entries = [
        {
            "schema": "repro.perf-entry/1",
            "bench": "gc",
            "recorded_utc": f"2026-08-0{d}T00:00:00Z",
            "metrics": {"campaign_wall_seconds": 2.0 + d, "faults": 464},
            "key": {"scale": "ci", "engine": "dp", "seed": 0},
            "provenance": {"git_sha": f"sha{d}000000"},
        }
        for d in (1, 2)
    ]
    (history / "gc.jsonl").write_text(
        "".join(json.dumps(entry) + "\n" for entry in entries)
    )

    # one bench artifact
    write_bench_artifact(
        results,
        "observatory",
        {"wall_seconds": 1.5, "overhead_pct": 0.4},
        manifest=RunManifest.collect(),
    )

    # one experiment JSON carrying a resource series
    (results / "fig2.json").write_text(
        json.dumps(
            {
                "schema": "repro.experiment-result/1",
                "experiment": "fig2",
                "manifest": {
                    "resources": {
                        "schema": "repro.resource-series/1",
                        "interval": 0.05,
                        "samples": [
                            {"t": 0.0, "rss_bytes": 1000},
                            {"t": 0.05, "rss_bytes": 2000},
                            {"t": 0.1, "rss_bytes": 1800},
                        ],
                    }
                },
            }
        )
    )

    # one span trace for the hotspot section
    spans = [
        {
            "name": "campaign.run",
            "id": "a",
            "parent": None,
            "start": 0.0,
            "dur": 1.0,
            "status": "ok",
        },
        {
            "name": "dp.compute_test_set",
            "id": "b",
            "parent": "a",
            "start": 0.1,
            "dur": 0.8,
            "status": "ok",
        },
    ]
    (results / "trace_demo.jsonl").write_text(
        "".join(json.dumps(span) + "\n" for span in spans)
    )
    return results


def test_collect_gathers_every_section(results_tree):
    data = dashboard.collect(results_tree)
    assert len(data["ledger"]) == 2
    assert data["ledger"][0]["status"] == "ok"
    assert data["ledger"][0]["meta"]["circuit"] == "c17"
    assert set(data["trajectories"]) == {"gc"}
    assert len(data["trajectories"]["gc"]) == 2
    assert [bench["name"] for bench in data["benches"]] == ["observatory"]
    assert data["benches"][0]["metrics"]["wall_seconds"] == 1.5
    assert len(data["resources"]) == 1
    assert data["resources"][0]["label"] == "fig2"
    assert len(data["hotspots"]) == 1
    assert data["hotspots"][0]["spans"] == 2


def test_render_full_tree_is_standalone_html(results_tree):
    text = dashboard.render_html(dashboard.collect(results_tree))
    assert text.startswith("<!DOCTYPE html>")
    assert text.rstrip().endswith("</html>")
    # self-contained: no external fetches of any kind
    assert "http://" not in text and "https://" not in text
    assert "<link" not in text and 'src="' not in text
    # every populated section rendered its data
    assert "c432" in text and "stuck-at" in text
    assert "campaign_wall_seconds" in text
    assert "observatory" in text
    assert "rss_bytes" in text
    assert "dp.compute_test_set" in text
    # charts carry the hover payload, and dark mode is declared
    assert "data-pts=" in text
    assert "prefers-color-scheme: dark" in text


def test_render_empty_tree_degrades_to_notes(tmp_path):
    empty = tmp_path / "results"
    empty.mkdir()
    text = dashboard.render_html(dashboard.collect(empty))
    assert text.startswith("<!DOCTYPE html>")
    for section in (
        "Run ledger",
        "Perf trajectories",
        "Resource curves",
        "Benchmark artifacts",
        "Span hotspots",
    ):
        assert section in text
    assert text.count('class="empty"') >= 4


def test_corrupt_ledger_object_is_surfaced(results_tree):
    ledger = store.RunLedger(results_tree / "ledger")
    key = ledger.keys()[0]
    path = ledger.object_path(key)
    path.write_text(path.read_text().replace('"n": 0', '"n": 7'))
    data = dashboard.collect(results_tree)
    statuses = {entry["key"]: entry["status"] for entry in data["ledger"]}
    assert statuses[key] == "corrupt"
    text = dashboard.render_html(data)
    assert "corrupt" in text


def test_write_dashboard_and_cli(results_tree, tmp_path, capsys):
    out = dashboard.write_dashboard(results_tree)
    assert out == results_tree / "dashboard.html"
    assert out.read_text().startswith("<!DOCTYPE html>")

    from repro.obs.__main__ import main

    explicit = tmp_path / "report.html"
    code = main(
        ["dashboard", "--results", str(results_tree), "--out", str(explicit)]
    )
    assert code == 0
    assert explicit.exists()
    assert str(explicit) in capsys.readouterr().out


def test_line_chart_geometry():
    svg = dashboard._line_chart(
        [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)], x_labels=["a", "b", "c"]
    )
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert 'class="series"' in svg and 'class="dot"' in svg
    assert "NaN" not in svg
    # single-point and empty inputs must not crash
    assert "<svg" in dashboard._line_chart([(0.0, 5.0)])
    assert "no data" in dashboard._line_chart([])


def test_compact_figures():
    assert dashboard._compact(999) == "999"
    assert dashboard._compact(1234) == "1,234"
    assert dashboard._compact(12_900) == "12.9K"
    assert dashboard._compact(4_200_000) == "4.2M"
    assert dashboard._compact(2.5e9) == "2.5B"
    assert dashboard._compact(0.123) == "0.123"
