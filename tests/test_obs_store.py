"""Durability and integrity of the content-addressed run ledger.

Three properties a persistent cross-run cache must actually hold, not
just claim:

* **concurrent writers stay consistent** — two processes putting into
  the same ledger interleave whole index lines, never fragments;
* **corruption is detected, never served** — a single bit flip in a
  stored object makes ``verify`` flag it and ``get`` treat it as a
  miss (the caller recomputes);
* **a miss after ``gc`` degrades to recompute** — eviction is an
  ordinary miss, not an error.
"""

from __future__ import annotations

import json
import multiprocessing
import sys

import pytest

from repro.obs import store


@pytest.fixture
def ledger(tmp_path):
    return store.RunLedger(tmp_path / "ledger")


def _body(i: int) -> dict:
    return {"schema": "test/1", "value": i, "payload": list(range(i % 7))}


# ----------------------------------------------------------------------
# Keys and canonical form
# ----------------------------------------------------------------------
def test_run_key_is_order_insensitive():
    a = store.run_key({"x": 1, "y": [1, 2], "z": None})
    b = store.run_key({"z": None, "y": [1, 2], "x": 1})
    assert a == b and len(a) == 64


def test_run_key_changes_with_any_field():
    base = {"circuit": "c432", "seed": 0}
    assert store.run_key(base) != store.run_key({**base, "seed": 1})
    assert store.run_key(base) != store.run_key({**base, "extra": None})


def test_canonical_json_fixed_separators():
    assert store.canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


# ----------------------------------------------------------------------
# Round trip, query, stats
# ----------------------------------------------------------------------
def test_put_get_round_trip(ledger):
    key = store.run_key({"n": 1})
    ledger.put(key, _body(1), meta={"circuit": "c17"})
    assert ledger.get(key) == _body(1)
    stats = ledger.stats()
    assert stats.puts == 1 and stats.hits >= 1 and stats.corrupt == 0


def test_get_miss_on_unknown_key(ledger):
    assert ledger.get("0" * 64) is None
    assert ledger.stats().misses == 1


def test_query_filters_on_meta(ledger):
    for i, circuit in enumerate(("c17", "c432", "c17")):
        ledger.put(
            store.run_key({"n": i}),
            _body(i),
            meta={"circuit": circuit, "model": "stuck-at"},
        )
    assert len(ledger.query(circuit="c17")) == 2
    assert len(ledger.query(circuit="c432", model="stuck-at")) == 1
    assert ledger.query(circuit="c880") == []


def test_reput_overwrites_and_appends(ledger):
    key = store.run_key({"n": 1})
    ledger.put(key, _body(1))
    ledger.put(key, _body(1))
    assert ledger.keys() == [key]
    assert len(ledger.entries()) == 2


# ----------------------------------------------------------------------
# Durability 1: concurrent put from two processes
# ----------------------------------------------------------------------
def _writer(root: str, salt: int, count: int) -> None:
    ledger = store.RunLedger(root)
    for i in range(count):
        key = store.run_key({"salt": salt, "n": i})
        ledger.put(key, {"salt": salt, "n": i}, meta={"salt": salt})


def test_concurrent_puts_from_two_processes(ledger):
    """Whole-line O_APPEND writes: no torn/interleaved index lines."""
    count = 40
    ctx = multiprocessing.get_context(
        "fork" if sys.platform != "win32" else "spawn"
    )
    workers = [
        ctx.Process(target=_writer, args=(str(ledger.root), salt, count))
        for salt in (1, 2)
    ]
    for proc in workers:
        proc.start()
    for proc in workers:
        proc.join(60)
        assert proc.exitcode == 0
    # every line parses (no fragments), every put is present
    lines = ledger.index_path.read_text().splitlines()
    assert len(lines) == 2 * count
    for line in lines:
        entry = json.loads(line)
        assert entry["schema"] == store.INDEX_SCHEMA
    assert len(ledger.keys()) == 2 * count
    # and every object is retrievable and intact
    assert all(status == "ok" for _, status in ledger.verify())
    for salt in (1, 2):
        for i in range(count):
            key = store.run_key({"salt": salt, "n": i})
            assert ledger.get(key) == {"salt": salt, "n": i}


def test_torn_trailing_index_line_is_skipped(ledger):
    key = store.run_key({"n": 1})
    ledger.put(key, _body(1))
    with open(ledger.index_path, "a", encoding="utf-8") as fh:
        fh.write('{"schema": "repro.ledger-index/1", "key": "tr')  # torn
    assert [entry["key"] for entry in ledger.entries()] == [key]


# ----------------------------------------------------------------------
# Durability 2: bit flips are flagged and never served
# ----------------------------------------------------------------------
def test_verify_flags_bit_flipped_object(ledger):
    good, bad = store.run_key({"n": 1}), store.run_key({"n": 2})
    ledger.put(good, _body(1))
    ledger.put(bad, _body(2))
    path = ledger.object_path(bad)
    raw = bytearray(path.read_bytes())
    target = raw.find(b'"value": 2')
    assert target != -1
    raw[target + len(b'"value": ')] ^= 0x01  # 2 -> 3, valid JSON still
    path.write_bytes(bytes(raw))
    assert dict(ledger.verify()) == {good: "ok", bad: "corrupt"}


def test_get_never_serves_corrupted_body(ledger):
    key = store.run_key({"n": 5})
    ledger.put(key, _body(5))
    path = ledger.object_path(key)
    document = json.loads(path.read_text())
    document["body"]["value"] = 6  # tamper without updating the digest
    path.write_text(json.dumps(document))
    assert ledger.get(key) is None  # miss → caller recomputes
    stats = ledger.stats()
    assert stats.corrupt == 1 and stats.misses == 1
    # recompute-and-reput heals it
    ledger.put(key, _body(5))
    assert ledger.get(key) == _body(5)


def test_unparseable_object_is_a_miss(ledger):
    key = store.run_key({"n": 9})
    ledger.put(key, _body(9))
    ledger.object_path(key).write_text("{ not json")
    assert ledger.get(key) is None
    assert ledger.stats().corrupt == 1


# ----------------------------------------------------------------------
# Durability 3: gc eviction degrades to an ordinary miss
# ----------------------------------------------------------------------
def test_get_after_gc_misses_then_recomputes(ledger):
    keys = []
    for i in range(5):
        key = store.run_key({"n": i})
        ledger.put(key, _body(i))
        keys.append(key)
    evicted = ledger.gc(keep=2)
    assert evicted == keys[:3]
    for key in evicted:
        assert ledger.get(key) is None  # plain miss, no exception
    for i, key in enumerate(keys[3:], start=3):
        assert ledger.get(key) == _body(i)  # survivors intact
    # the index only mentions survivors now
    assert ledger.keys() == keys[3:]
    assert all(status == "ok" for _, status in ledger.verify())
    # "recompute" then re-put repopulates the evicted key
    ledger.put(keys[0], _body(0))
    assert ledger.get(keys[0]) == _body(0)


def test_gc_keep_zero_empties_ledger(ledger):
    for i in range(3):
        ledger.put(store.run_key({"n": i}), _body(i))
    assert len(ledger.gc(keep=0)) == 3
    assert ledger.keys() == []
    assert ledger.entries() == []


def test_gc_rejects_negative_keep(ledger):
    with pytest.raises(ValueError):
        ledger.gc(keep=-1)


# ----------------------------------------------------------------------
# Environment switch
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "raw,enabled",
    [
        ("", False),
        ("0", False),
        ("off", False),
        ("1", True),
        ("true", True),
        ("/tmp/elsewhere", True),
    ],
)
def test_env_cache_enabled(raw, enabled):
    assert store.env_cache_enabled({"REPRO_CACHE": raw}) is enabled


def test_env_ledger_dir_paths():
    from pathlib import Path

    assert store.env_ledger_dir({"REPRO_CACHE": "1"}) == store.DEFAULT_LEDGER_DIR
    assert store.env_ledger_dir({}) == store.DEFAULT_LEDGER_DIR
    assert store.env_ledger_dir({"REPRO_CACHE": "/x/y"}) == Path("/x/y")
