"""Resource sampler: probes, series round trip, and the null path."""

from __future__ import annotations

import pytest

from repro.obs import resource


@pytest.fixture
def fake_clock():
    class Clock:
        now = 100.0

        def __call__(self) -> float:
            return self.now

    return Clock()


@pytest.fixture
def probe(request):
    calls = {"n": 0}

    def _probe():
        calls["n"] += 1
        return {"widgets": 10 * calls["n"]}

    resource.register_probe("testprobe", _probe)
    request.addfinalizer(lambda: resource.unregister_probe("testprobe"))
    return calls


def test_sample_contains_rss_and_probe_fields(fake_clock, probe):
    sampler = resource.ResourceSampler(clock=fake_clock)
    sample = sampler.sample_once()
    assert sample["t"] == 0.0
    assert sample["rss_bytes"] > 0
    assert sample["testprobe.widgets"] == 10


def test_series_round_trip_through_summary(fake_clock, probe):
    sampler = resource.ResourceSampler(interval=0.5, clock=fake_clock)
    for dt in (0.0, 0.5, 1.0):
        fake_clock.now = 100.0 + dt
        sampler.sample_once()
    fake_clock.now = 101.5
    series = resource.ResourceSeries(
        interval=0.5, samples=tuple(sampler._samples)
    )
    # other probes (e.g. the bdd one) may be registered process-wide;
    # only this test's fields need pinning
    assert {"rss_bytes", "testprobe.widgets"} <= set(series.fields())
    assert series.peak("testprobe.widgets") == 30
    assert series.series("testprobe.widgets") == [
        (0.0, 10),
        (0.5, 20),
        (1.0, 30),
    ]
    summary = series.summary()
    assert summary["schema"] == "repro.resource-series/1"
    assert summary["num_samples"] == 3
    assert summary["duration_seconds"] == 1.0
    assert summary["peaks"]["testprobe.widgets"] == 30
    rebuilt = resource.ResourceSeries.from_summary(summary)
    assert rebuilt.samples == series.samples
    assert rebuilt.interval == 0.5


def test_raising_probe_skips_only_its_fields(fake_clock):
    def bad():
        raise RuntimeError("probe exploded")

    resource.register_probe("bad", bad)
    try:
        sample = resource.ResourceSampler(clock=fake_clock).sample_once()
        assert "rss_bytes" in sample  # the run survives
        assert not any(k.startswith("bad.") for k in sample)
    finally:
        resource.unregister_probe("bad")


def test_bdd_probe_reports_manager_footprint():
    import repro.bdd.manager as manager_mod

    assert "bdd" in resource.probe_names()
    manager = manager_mod.BDDManager(["a", "b"])
    a, b = manager.var("a"), manager.var("b")
    manager.apply_and(a, b)
    fields = resource._PROBES["bdd"]()
    assert fields["live_nodes"] >= 2
    assert fields["allocated_nodes"] >= fields["live_nodes"] >= 0


def test_thread_lifecycle_collects_anchor_and_endpoint():
    sampler = resource.ResourceSampler(interval=0.005)
    sampler.start()
    series = sampler.stop()
    # t=0 anchor + closing sample, regardless of thread timing
    assert len(series.samples) >= 2
    assert series.samples[0]["t"] == pytest.approx(0.0, abs=0.05)
    assert bool(series)
    # stop is idempotent and start can rerun
    sampler.start()
    assert sampler.stop()


def test_null_sampler_is_shared_and_inert():
    assert resource.NULL_SAMPLER.start() is resource.NULL_SAMPLER
    assert resource.NULL_SAMPLER.stop() is resource.EMPTY_SERIES
    assert not resource.EMPTY_SERIES
    assert resource.EMPTY_SERIES.fields() == []
    with resource.NULL_SAMPLER as sampler:
        sampler.sample_once()


def test_module_switch(monkeypatch):
    monkeypatch.setattr(resource, "_enabled", False)
    assert resource.resource_sampler() is resource.NULL_SAMPLER
    resource.enable_resource()
    try:
        sampler = resource.resource_sampler(interval=0.5)
        assert isinstance(sampler, resource.ResourceSampler)
        assert sampler.interval == 0.5
    finally:
        resource.disable_resource()
    assert resource.resource_sampler() is resource.NULL_SAMPLER


@pytest.mark.parametrize(
    "raw,enabled",
    [("", False), ("0", False), ("off", False), ("1", True), ("0.25", True)],
)
def test_env_enabled(raw, enabled):
    assert resource.env_enabled({"REPRO_RESOURCE": raw}) is enabled


def test_env_interval():
    assert resource.env_interval({"REPRO_RESOURCE": "0.25"}) == 0.25
    assert resource.env_interval({"REPRO_RESOURCE": "1"}) == 1.0
    assert (
        resource.env_interval({"REPRO_RESOURCE": "yes"})
        == resource.DEFAULT_INTERVAL
    )
    # the busy-loop guard
    assert (
        resource.env_interval({"REPRO_RESOURCE": "0.0000001"})
        == resource.MIN_INTERVAL
    )


def test_campaign_attaches_series_when_enabled(monkeypatch):
    from repro.experiments.campaigns import (
        clear_campaign_caches,
        stuck_at_campaign,
    )
    from repro.experiments.config import get_scale

    monkeypatch.setattr(resource, "_enabled", True)
    clear_campaign_caches()
    try:
        result = stuck_at_campaign("c17", get_scale("ci"))
    finally:
        clear_campaign_caches()
    assert result.resources
    assert "rss_bytes" in result.resources.fields()
    assert result.resources.peak("rss_bytes") > 0
