"""Unit tests for the Line fault-site abstraction."""

from __future__ import annotations

import pytest

from repro.circuit.netlist import CircuitError
from repro.faults.lines import Line, branch_lines, stem_lines


class TestLine:
    def test_stem_vs_branch(self):
        stem = Line("net")
        branch = Line("net", "sink", 0)
        assert stem.is_stem and not stem.is_branch
        assert branch.is_branch and not branch.is_stem

    def test_half_specified_branch_rejected(self):
        with pytest.raises(ValueError):
            Line("net", sink="g")
        with pytest.raises(ValueError):
            Line("net", pin=0)

    def test_ordering_puts_stems_first(self):
        stem = Line("net")
        branch = Line("net", "g", 0)
        assert stem < branch
        assert sorted([branch, stem]) == [stem, branch]

    def test_str(self):
        assert str(Line("n")) == "n"
        assert str(Line("n", "g", 2)) == "n->g.2"

    def test_validate(self, tiny_circuit):
        Line("conj").validate(tiny_circuit)
        Line("a", "conj", 0).validate(tiny_circuit)
        with pytest.raises(CircuitError):
            Line("missing").validate(tiny_circuit)
        with pytest.raises(CircuitError):
            Line("a", "conj", 1).validate(tiny_circuit)  # pin 1 is b
        with pytest.raises(CircuitError):
            Line("a", "a", 0).validate(tiny_circuit)  # PI is not a gate


class TestEnumeration:
    def test_stem_lines_cover_all_nets(self, tiny_circuit):
        lines = stem_lines(tiny_circuit)
        assert [l.net for l in lines] == list(tiny_circuit.nets)
        assert all(l.is_stem for l in lines)

    def test_branch_lines_cover_all_connections(self, tiny_circuit):
        lines = branch_lines(tiny_circuit)
        total_pins = sum(len(g.fanins) for g in tiny_circuit.gates())
        assert len(lines) == total_pins
        for line in lines:
            line.validate(tiny_circuit)
