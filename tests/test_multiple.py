"""Tests for the multiple stuck-at fault model."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.core.engine import DifferencePropagation
from repro.core.faulty_sim import SymbolicFaultSimulator
from repro.core.metrics import detectability_upper_bound
from repro.core.symbolic import CircuitFunctions
from repro.faults.lines import Line
from repro.faults.multiple import MultipleStuckAtFault, double_faults
from repro.faults.stuck_at import StuckAtFault, all_stuck_at_faults
from repro.simulation.truthtable import TruthTableSimulator
from repro.simulation.injection import injection_for

from tests.strategies import circuits


class TestModel:
    def test_components_are_sorted_and_deduplicated(self):
        a = StuckAtFault(Line("x"), False)
        b = StuckAtFault(Line("y"), True)
        assert MultipleStuckAtFault.of(b, a, a) == MultipleStuckAtFault.of(a, b)

    def test_needs_two_components(self):
        a = StuckAtFault(Line("x"), False)
        with pytest.raises(ValueError):
            MultipleStuckAtFault.of(a)
        with pytest.raises(ValueError):
            MultipleStuckAtFault.of(a, a)

    def test_conflicting_polarities_rejected(self):
        with pytest.raises(ValueError):
            MultipleStuckAtFault.of(
                StuckAtFault(Line("x"), False), StuckAtFault(Line("x"), True)
            )

    def test_str_and_accessors(self):
        fault = MultipleStuckAtFault.of(
            StuckAtFault(Line("x"), False), StuckAtFault(Line("y"), True)
        )
        assert fault.multiplicity == 2
        assert {line.net for line in fault.lines()} == {"x", "y"}
        assert "&" in str(fault)

    def test_double_faults_enumeration(self):
        singles = [
            StuckAtFault(Line("x"), False),
            StuckAtFault(Line("x"), True),
            StuckAtFault(Line("y"), False),
        ]
        pairs = double_faults(singles)
        # (x0,y0), (x1,y0) — the x0/x1 pair conflicts on the line.
        assert len(pairs) == 2

    def test_injection_merges_components(self):
        fault = MultipleStuckAtFault.of(
            StuckAtFault(Line("x"), False),
            StuckAtFault(Line("y", "g", 1), True),
        )
        injection = injection_for(fault)
        assert set(injection.stem_overrides) == {"x"}
        assert set(injection.branch_overrides) == {("g", 1)}


class TestMasking:
    def test_double_fault_can_mask(self):
        """A pair whose components cancel on the only path is undetectable
        even though each component alone is detectable."""
        from repro.circuit.builder import CircuitBuilder

        b = CircuitBuilder("mask")
        a = b.input("a")
        first = b.not_(a, name="first")
        second = b.not_(first, name="second")
        b.output(second)
        circuit = b.build()
        engine = DifferencePropagation(circuit)
        sa_first = StuckAtFault(Line("first"), False)
        sa_second = StuckAtFault(Line("second"), True)
        assert engine.analyze(sa_first).is_detectable
        assert engine.analyze(sa_second).is_detectable
        both = MultipleStuckAtFault.of(sa_first, sa_second)
        # second s-a-1 dominates the cone: the composite equals the
        # single fault on `second`, masking `first` entirely.
        composite = engine.analyze(both)
        single = engine.analyze(sa_second)
        assert composite.tests == single.tests


class TestAgreementWithOracles:
    @pytest.mark.parametrize("circuit_name", ["c17", "fulladder"])
    def test_all_double_checkpoint_faults(self, circuit_name, request):
        circuit = request.getfixturevalue(circuit_name)
        functions = CircuitFunctions(circuit)
        engine = DifferencePropagation(circuit, functions=functions)
        fsim = SymbolicFaultSimulator(circuit, functions=functions)
        simulator = TruthTableSimulator(circuit)
        singles = all_stuck_at_faults(circuit)
        rng = random.Random(1)
        for _ in range(120):
            first, second = rng.sample(singles, 2)
            if first.line == second.line:
                continue
            fault = MultipleStuckAtFault.of(first, second)
            analysis = engine.analyze(fault)
            assert analysis.detectability == simulator.detectability(fault)
            assert analysis.tests == fsim.analyze(fault).tests
            assert analysis.detectability <= detectability_upper_bound(
                functions, fault
            )


@settings(max_examples=15, deadline=None)
@given(circuits(max_inputs=4, max_gates=10))
def test_multiple_faults_match_brute_force_on_random_circuits(circuit):
    engine = DifferencePropagation(circuit)
    simulator = TruthTableSimulator(circuit)
    singles = all_stuck_at_faults(circuit)
    rng = random.Random(7)
    for _ in range(25):
        k = rng.choice((2, 3))
        chosen = rng.sample(singles, min(k, len(singles)))
        if len({f.line for f in chosen}) != len(chosen) or len(chosen) < 2:
            continue
        fault = MultipleStuckAtFault(tuple(chosen))
        assert engine.analyze(fault).detectability == simulator.detectability(
            fault
        )
