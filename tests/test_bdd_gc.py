"""Reference counting, garbage collection and bounded-cache correctness.

The hazards these tests pin down:

* live roots must evaluate identically before and after :meth:`gc`,
  with *unchanged node ids* (raw int handles are pervasive);
* freed slots are reused, so any computed-table or counting-memo entry
  touching a dead id must be invalidated — a stale entry would silently
  alias onto whatever different node later lands in the slot;
* cache eviction may only ever cost recomputation, never wrongness.

Property tests draw expression trees from
:func:`tests.strategies.boolexprs` and build them in differently
configured managers, demanding identical semantics throughout.
"""

from __future__ import annotations

import itertools
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.cache import (
    OP_AND,
    OP_NAMES,
    OP_NOT,
    ManagerStats,
    OperationCache,
)
from repro.bdd.function import Function
from repro.bdd.manager import FALSE, TRUE, BDDManager

from tests.strategies import BOOLEXPR_NAMES, boolexprs, build_bdd


def truth_table(manager: BDDManager, node: int) -> tuple[bool, ...]:
    """Exhaustive evaluation over the shared five-variable space."""
    return tuple(
        manager.evaluate(node, dict(zip(BOOLEXPR_NAMES, values)))
        for values in itertools.product(
            (False, True), repeat=len(BOOLEXPR_NAMES)
        )
    )


def fresh_manager(**kwargs) -> BDDManager:
    return BDDManager(BOOLEXPR_NAMES, **kwargs)


# ----------------------------------------------------------------------
# Reference counting
# ----------------------------------------------------------------------
class TestRefcounts:
    def test_function_handles_take_and_release_references(self):
        m = fresh_manager()
        f = Function(m, m.apply_and(m.var("a"), m.var("b")))
        node = f.node
        assert m.ref_count(node) == 1
        g = Function(m, node)
        assert m.ref_count(node) == 2
        del g
        assert m.ref_count(node) == 1
        del f
        assert m.ref_count(node) == 0

    def test_terminals_are_never_counted(self):
        m = fresh_manager()
        t = Function.true(m)
        z = Function.false(m)
        assert m.ref_count(TRUE) == 0
        assert m.ref_count(FALSE) == 0
        assert m.incref(TRUE) == TRUE
        m.decref(FALSE)  # no-op, no error
        del t, z

    def test_decref_is_lenient_on_over_release(self):
        m = fresh_manager()
        node = m.var("a")
        m.decref(node)  # never incref'd: must not raise
        m.incref(node)
        m.decref(node)
        m.decref(node)  # second release of a single ref: still fine
        assert m.ref_count(node) == 0


# ----------------------------------------------------------------------
# Garbage collection
# ----------------------------------------------------------------------
class TestGC:
    def test_dead_nodes_are_reclaimed_and_slots_reused(self):
        m = fresh_manager()
        # A chain of XORs with no external references is pure garbage.
        acc = m.var("a")
        for name in ("b", "c", "d", "e"):
            acc = m.apply_xor(acc, m.var(name))
        allocated = m.num_nodes
        assert m.num_live_nodes == allocated
        freed = m.gc()
        assert freed > 0
        assert m.reclaimed_nodes == freed
        assert m.gc_runs == 1
        assert m.num_live_nodes == allocated - freed
        # Rebuilding comparable structure reuses freed slots: the
        # allocation high-water mark must not grow.
        acc = m.var("e")
        for name in ("d", "c", "b", "a"):
            acc = m.apply_xor(acc, m.var(name))
        assert m.num_nodes <= allocated

    def test_live_roots_survive_with_stable_ids(self):
        m = fresh_manager()
        kept = Function(m, build_bdd(m, ("xor", ("and", "a", "b"), "c")))
        node_before = kept.node
        table_before = truth_table(m, kept.node)
        # garbage alongside the root
        build_bdd(m, ("or", ("not", "d"), ("and", "e", "a")))
        m.gc()
        assert kept.node == node_before
        assert truth_table(m, kept.node) == table_before

    def test_gc_without_roots_drops_every_internal_node(self):
        m = fresh_manager()
        build_bdd(m, ("and", ("or", "a", "b"), ("xor", "c", "d")))
        m.gc()
        assert m.num_live_nodes == 2  # just the terminals

    def test_unique_table_is_canonical_after_gc(self):
        m = fresh_manager()
        kept = Function(m, m.apply_and(m.var("a"), m.var("b")))
        build_bdd(m, ("xor", ("or", "c", "d"), "e"))  # garbage
        m.gc()
        # The same function must resolve to the very same node id —
        # survivors stay registered in the rebuilt unique table.
        assert m.apply_and(m.var("a"), m.var("b")) == kept.node

    def test_repeated_gc_is_idempotent_on_a_clean_store(self):
        m = fresh_manager()
        kept = Function(m, build_bdd(m, ("or", "a", ("not", "b"))))
        m.gc()
        live = m.num_live_nodes
        assert m.gc() == 0
        assert m.num_live_nodes == live
        del kept

    @settings(max_examples=60, deadline=None)
    @given(
        exprs=st.lists(boolexprs(), min_size=1, max_size=6),
        keep_mask=st.lists(st.booleans(), min_size=6, max_size=6),
    )
    def test_live_roots_evaluate_identically_before_and_after_gc(
        self, exprs, keep_mask
    ):
        m = fresh_manager()
        handles = [Function(m, build_bdd(m, e)) for e in exprs]
        kept = [h for h, keep in zip(handles, keep_mask) if keep]
        if not kept:  # always keep at least one root
            kept = [handles[0]]
        expected = [(h.node, truth_table(m, h.node)) for h in kept]
        dropped = [h for h in handles if h not in kept]
        del handles
        for h in dropped:
            del h
        del dropped
        m.gc()
        for handle, (node_before, table_before) in zip(kept, expected):
            assert handle.node == node_before
            assert truth_table(m, handle.node) == table_before

    @settings(max_examples=40, deadline=None)
    @given(exprs=st.lists(boolexprs(), min_size=1, max_size=5))
    def test_interleaved_ops_and_gc_match_a_gc_free_oracle(self, exprs):
        noisy = fresh_manager()
        oracle = fresh_manager()
        for expr in exprs:
            kept = Function(noisy, build_bdd(noisy, expr))
            noisy.gc()  # collect between every build
            assert truth_table(noisy, kept.node) == truth_table(
                oracle, build_bdd(oracle, expr)
            )
            del kept


# ----------------------------------------------------------------------
# Memo / computed-table invalidation across collections
# ----------------------------------------------------------------------
class TestMemoInvalidation:
    def test_stale_computed_entries_never_alias_reused_slots(self):
        m = fresh_manager()
        # Root the literals themselves; only the AND node is garbage.
        lit_a, lit_b = Function(m, m.var("a")), Function(m, m.var("b"))
        a, b = lit_a.node, lit_b.node
        dead = m.apply_and(a, b)  # cached under (OP_AND, a, b)
        dead_table = truth_table(m, dead)
        m.gc()  # the AND node has no external refs and dies
        assert (OP_AND, min(a, b), max(a, b)) not in m._cache.data
        # Fill the freed slot with a *different* node, then redo the
        # AND: a stale cache entry would now hand back the impostor.
        m.apply_or(m.var("c"), m.var("d"))
        again = m.apply_and(a, b)
        assert truth_table(m, again) == dead_table

    def test_involution_priming_is_invalidated_with_its_node(self):
        m = fresh_manager()
        f = Function(m, build_bdd(m, ("or", "a", ("and", "b", "c"))))
        negated = m.apply_not(f.node)  # primes (OP_NOT, negated) -> f
        m.gc()  # negation had no external ref: both entries must go
        assert (OP_NOT, f.node) not in m._cache.data
        assert (OP_NOT, negated) not in m._cache.data
        assert truth_table(m, m.apply_not(f.node)) == tuple(
            not v for v in truth_table(m, f.node)
        )

    @settings(max_examples=40, deadline=None)
    @given(expr=boolexprs())
    def test_satcount_memo_survives_gc_for_live_roots(self, expr):
        m = fresh_manager()
        f = Function(m, build_bdd(m, expr))
        count_before = f.satcount()
        density_before = f.density()
        m.gc()
        # The memo may only retain live ids...
        level = m._level
        assert all(level[u] != -1 for u in m._count_memo)
        # ...and must still answer identically for the surviving root.
        assert f.satcount() == count_before
        assert f.density() == density_before
        assert f.satcount() == sum(truth_table(m, f.node))

    def test_satcount_memo_drops_dead_roots(self):
        m = fresh_manager()
        dead = build_bdd(m, ("xor", "a", ("and", "b", "c")))
        m.satcount(dead)  # populate the memo
        m.gc()
        assert dead not in m._count_memo


# ----------------------------------------------------------------------
# Bounded operation cache
# ----------------------------------------------------------------------
class TestBoundedCache:
    def test_cache_size_stays_within_bound(self):
        m = fresh_manager(cache_size=32)
        for expr_vars in itertools.permutations(BOOLEXPR_NAMES, 3):
            build_bdd(m, ("xor", ("and", *expr_vars[:2]), expr_vars[2]))
            assert len(m._cache) <= 32

    def test_eviction_counters_increment(self):
        m = fresh_manager(cache_size=8)
        for expr_vars in itertools.permutations(BOOLEXPR_NAMES, 3):
            build_bdd(m, ("or", ("xor", *expr_vars[:2]), expr_vars[2]))
        stats = m.stats()
        assert stats.cache_evictions > 0
        assert stats.cache_bound == 8
        assert sum(op.evictions for op in stats.op_stats) == (
            stats.cache_evictions
        )

    @settings(max_examples=60, deadline=None)
    @given(exprs=st.lists(boolexprs(), min_size=1, max_size=5))
    def test_eviction_never_returns_a_wrong_result(self, exprs):
        # A pathologically tiny cache evicts constantly; results must
        # still match an effectively unbounded manager bit for bit.
        tiny = fresh_manager(cache_size=4)
        roomy = fresh_manager()
        for expr in exprs:
            assert truth_table(tiny, build_bdd(tiny, expr)) == truth_table(
                roomy, build_bdd(roomy, expr)
            )

    def test_clear_preserves_counters_but_drops_entries(self):
        m = fresh_manager()
        build_bdd(m, ("and", ("or", "a", "b"), "c"))
        misses_before = m.stats().cache_misses
        assert misses_before > 0
        m.clear_caches()
        stats = m.stats()
        assert stats.cache_entries == 0
        assert stats.cache_misses == misses_before


# ----------------------------------------------------------------------
# Telemetry plumbing
# ----------------------------------------------------------------------
class TestManagerStats:
    def test_stats_snapshot_is_consistent(self):
        m = fresh_manager()
        f = Function(m, build_bdd(m, ("xor", ("or", "a", "b"), "c")))
        build_bdd(m, ("and", "d", "e"))  # garbage
        m.gc()
        stats = m.stats()
        assert stats.live_nodes == m.num_live_nodes
        assert stats.allocated_nodes == m.num_nodes
        assert stats.live_nodes <= stats.allocated_nodes
        assert stats.gc_runs == 1
        assert stats.reclaimed_nodes == m.reclaimed_nodes > 0
        assert 0.0 <= stats.cache_hit_rate <= 1.0
        lookups = stats.cache_hits + stats.cache_misses
        assert lookups == sum(
            op.hits + op.misses for op in stats.op_stats
        )
        del f

    def test_stats_are_picklable_for_worker_transport(self):
        m = fresh_manager()
        build_bdd(m, ("or", ("and", "a", "b"), ("xor", "c", "d")))
        stats = m.stats()
        clone = pickle.loads(pickle.dumps(stats))
        assert clone == stats

    def test_per_op_counters_name_every_op(self):
        cache = OperationCache(bound=16)
        assert len(cache.op_stats()) == len(OP_NAMES)
        m = fresh_manager()
        m.restrict(build_bdd(m, ("xor", "a", "b")), "a", True)
        by_name = {op.op: op for op in m.stats().op_stats}
        assert by_name["restrict"].lookups > 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
