"""Unit + property tests for netlist transforms."""

from __future__ import annotations

import itertools

from hypothesis import given, settings

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.transforms import decompose_to_two_input, expand_xor_to_nand

from tests.strategies import circuits


def _equivalent(a, b) -> bool:
    assert a.inputs == b.inputs
    assert a.outputs == b.outputs
    for values in itertools.product([False, True], repeat=a.num_inputs):
        assignment = dict(zip(a.inputs, values))
        if a.evaluate_outputs(assignment) != b.evaluate_outputs(assignment):
            return False
    return True


class TestDecompose:
    def test_wide_gates_become_chains(self):
        b = CircuitBuilder("wide")
        nets = b.inputs("a", "b", "c", "d")
        b.output(b.nand(*nets, name="y"))
        wide = b.build()
        narrow = decompose_to_two_input(wide)
        assert all(len(g.fanins) <= 2 for g in narrow.gates())
        assert narrow.gate("y").gate_type is GateType.NAND
        assert _equivalent(wide, narrow)

    def test_two_input_circuit_unchanged(self, c17):
        narrow = decompose_to_two_input(c17)
        assert narrow.num_gates == c17.num_gates

    def test_names_preserved(self):
        b = CircuitBuilder("wide")
        nets = b.inputs("a", "b", "c")
        b.output(b.xnor(*nets, name="y"))
        narrow = decompose_to_two_input(b.build())
        assert "y" in narrow
        assert narrow.is_output("y")


class TestExpandXor:
    def test_xor_becomes_four_nands(self):
        b = CircuitBuilder("one_xor")
        a, bb = b.inputs("a", "b")
        b.output(b.xor(a, bb, name="y"))
        expanded = expand_xor_to_nand(b.build())
        assert expanded.num_gates == 4
        assert all(
            g.gate_type is GateType.NAND for g in expanded.gates()
        )
        assert _equivalent(_rebuild_one_xor(), expanded)

    def test_xnor_becomes_five_gates(self):
        b = CircuitBuilder("one_xnor")
        a, bb = b.inputs("a", "b")
        b.output(b.xnor(a, bb, name="y"))
        expanded = expand_xor_to_nand(b.build())
        types = sorted(g.gate_type.value for g in expanded.gates())
        assert types.count("NAND") == 4
        assert types.count("NOT") == 1

    def test_c499_to_c1355_relationship(self):
        from repro.benchcircuits import build_c499, build_c1355

        c499 = build_c499()
        c1355 = build_c1355()
        assert c1355.num_gates > c499.num_gates
        assert not any(
            g.gate_type in (GateType.XOR, GateType.XNOR) for g in c1355.gates()
        )
        assert c1355.inputs == c499.inputs
        assert c1355.outputs == c499.outputs


def _rebuild_one_xor():
    b = CircuitBuilder("one_xor")
    a, bb = b.inputs("a", "b")
    b.output(b.xor(a, bb, name="y"))
    return b.build()


@settings(max_examples=40, deadline=None)
@given(circuits(max_inputs=4, max_gates=12))
def test_decompose_preserves_function(circuit):
    assert _equivalent(circuit, decompose_to_two_input(circuit))


@settings(max_examples=40, deadline=None)
@given(circuits(max_inputs=4, max_gates=12))
def test_expand_preserves_function(circuit):
    expanded = expand_xor_to_nand(circuit)
    assert not any(
        g.gate_type in (GateType.XOR, GateType.XNOR) for g in expanded.gates()
    )
    assert _equivalent(circuit, expanded)
