"""Validation of the benchmark suite against behavioural oracles."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.benchcircuits import (
    alu181_reference,
    build_c17,
    c432_reference,
    c499_reference,
    c1908_reference,
    circuit_notes,
    get_circuit,
    paper_suite,
    small_suite,
)
from repro.benchcircuits.c95 import c95_reference
from repro.benchcircuits.fulladder import fulladder_reference
from repro.benchcircuits.registry import CIRCUIT_NAMES


class TestRegistry:
    def test_suite_names_in_paper_order(self):
        assert CIRCUIT_NAMES == (
            "c17",
            "fulladder",
            "c95",
            "alu181",
            "c432",
            "c499",
            "c1355",
            "c1908",
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_circuit("c9999")

    def test_cached(self):
        assert get_circuit("c17") is get_circuit("c17")

    def test_notes_exist_for_all(self):
        for name in CIRCUIT_NAMES:
            assert circuit_notes(name)

    def test_small_suite_is_exhaustively_checkable(self):
        for circuit in small_suite():
            assert circuit.num_inputs <= 14

    def test_all_circuits_validate(self):
        for circuit in paper_suite():
            circuit.validate()


class TestInterfaces:
    """PI/PO counts must match the ISCAS-85 circuits being surrogated."""

    @pytest.mark.parametrize(
        "name, inputs, outputs",
        [
            ("c17", 5, 2),
            ("fulladder", 3, 2),
            ("c95", 9, 8),
            ("alu181", 14, 8),
            ("c432", 36, 7),
            ("c499", 41, 32),
            ("c1355", 41, 32),
            ("c1908", 33, 25),
        ],
    )
    def test_pi_po_counts(self, name, inputs, outputs):
        circuit = get_circuit(name)
        assert circuit.num_inputs == inputs
        assert circuit.num_outputs == outputs

    def test_c1355_larger_than_c499(self):
        assert get_circuit("c1355").num_gates > get_circuit("c499").num_gates


class TestC17:
    def test_exact_netlist(self):
        c17 = build_c17()
        assert c17.num_gates == 6
        assert all(g.gate_type.value == "NAND" for g in c17.gates())

    def test_known_vector(self):
        c17 = build_c17()
        out = c17.evaluate_outputs(
            {"G1": False, "G2": False, "G3": False, "G6": False, "G7": False}
        )
        assert out == {"G22": False, "G23": False}


class TestFullAdder:
    def test_exhaustive(self, fulladder):
        for a, b, cin in itertools.product([False, True], repeat=3):
            got = fulladder.evaluate_outputs({"a": a, "b": b, "cin": cin})
            assert got == fulladder_reference(a, b, cin)


class TestC95:
    def test_exhaustive(self, c95):
        for a in range(16):
            for b in range(16):
                for cin in (False, True):
                    assignment = {f"a{i}": bool((a >> i) & 1) for i in range(4)}
                    assignment |= {f"b{i}": bool((b >> i) & 1) for i in range(4)}
                    assignment["cin"] = cin
                    assert c95.evaluate_outputs(assignment) == c95_reference(
                        a, b, cin
                    )


class TestALU181:
    @pytest.mark.parametrize("mode", list(range(16)))
    def test_all_s_codes_sampled(self, alu181, mode):
        """All 16 S codes; operands sampled to keep the suite fast.

        (The full 2^14 exhaustive check lives in the slow marker below.)
        """
        rng = random.Random(mode)
        for _ in range(64):
            a, b = rng.randrange(16), rng.randrange(16)
            m, cn = bool(rng.getrandbits(1)), bool(rng.getrandbits(1))
            assignment = {}
            for i in range(4):
                assignment[f"a{i}"] = bool((a >> i) & 1)
                assignment[f"b{i}"] = bool((b >> i) & 1)
                assignment[f"s{i}"] = bool((mode >> i) & 1)
            assignment |= {"m": m, "cn": cn}
            assert alu181.evaluate_outputs(assignment) == alu181_reference(
                a, b, mode, m, cn
            )

    @pytest.mark.slow
    def test_exhaustive_all_16384_vectors(self, alu181):
        for a in range(16):
            for b in range(16):
                for s in range(16):
                    for m in (False, True):
                        for cn in (False, True):
                            assignment = {}
                            for i in range(4):
                                assignment[f"a{i}"] = bool((a >> i) & 1)
                                assignment[f"b{i}"] = bool((b >> i) & 1)
                                assignment[f"s{i}"] = bool((s >> i) & 1)
                            assignment |= {"m": m, "cn": cn}
                            assert alu181.evaluate_outputs(
                                assignment
                            ) == alu181_reference(a, b, s, m, cn)

    def test_known_add_mode(self, alu181):
        """S=1001, M=0, Cn=1 is A PLUS B."""
        assignment = {f"s{i}": bool((0b1001 >> i) & 1) for i in range(4)}
        assignment |= {"m": False, "cn": True}
        for i in range(4):
            assignment[f"a{i}"] = bool((5 >> i) & 1)
            assignment[f"b{i}"] = bool((6 >> i) & 1)
        out = alu181.evaluate_outputs(assignment)
        total = sum(int(out[f"f{i}"]) << i for i in range(4))
        assert total == (5 + 6) & 0xF
        assert out["cn4"] == (5 + 6 <= 15)


class TestC432:
    def test_random_vectors(self):
        circuit = get_circuit("c432")
        rng = random.Random(42)
        for _ in range(300):
            requests, enables = rng.getrandbits(32), rng.getrandbits(4)
            assignment = {f"r{i}": bool((requests >> i) & 1) for i in range(32)}
            assignment |= {f"e{i}": bool((enables >> i) & 1) for i in range(4)}
            assert circuit.evaluate_outputs(assignment) == c432_reference(
                requests, enables
            )

    def test_priority_order(self):
        circuit = get_circuit("c432")
        # r0 and r31 both pending, everything enabled: r0 wins (index 0).
        assignment = {f"r{i}": i in (0, 31) for i in range(32)}
        assignment |= {f"e{i}": True for i in range(4)}
        out = circuit.evaluate_outputs(assignment)
        assert not any(out[f"q{b}"] for b in range(5))
        assert out["anyreq"]


class TestC499Family:
    @staticmethod
    def _assignment(data, check, enable):
        assignment = {f"d{i}": bool((data >> i) & 1) for i in range(32)}
        assignment |= {f"ch{i}": bool((check >> i) & 1) for i in range(8)}
        assignment["en"] = enable
        return assignment

    def test_random_vectors(self):
        circuit = get_circuit("c499")
        rng = random.Random(7)
        for _ in range(200):
            data, check = rng.getrandbits(32), rng.getrandbits(8)
            enable = bool(rng.getrandbits(1))
            assert circuit.evaluate_outputs(
                self._assignment(data, check, enable)
            ) == c499_reference(data, check, enable)

    def test_corrects_single_bit_error(self):
        from repro.benchcircuits.c499 import signature

        circuit = get_circuit("c499")
        data = 0xDEADBEEF
        # Clean check bits for this word: syndrome must be zero...
        check = 0
        for j in range(8):
            parity = sum(
                (data >> i) & 1 for i in range(32) if (signature(i) >> j) & 1
            )
            check |= (parity % 2) << j
        corrupted = data ^ (1 << 13)
        out = circuit.evaluate_outputs(self._assignment(corrupted, check, True))
        recovered = sum(int(out[f"out{i}"]) << i for i in range(32))
        assert recovered == data

    def test_c1355_identical_function(self):
        c499 = get_circuit("c499")
        c1355 = get_circuit("c1355")
        rng = random.Random(11)
        for _ in range(100):
            assignment = self._assignment(
                rng.getrandbits(32), rng.getrandbits(8), bool(rng.getrandbits(1))
            )
            assert c499.evaluate_outputs(assignment) == c1355.evaluate_outputs(
                assignment
            )

    def test_signatures_unique_nonzero(self):
        from repro.benchcircuits.c499 import signature

        signatures = [signature(i) for i in range(32)]
        assert len(set(signatures)) == 32
        assert all(0 < s < 256 for s in signatures)


class TestC1908:
    @staticmethod
    def _assignment(data, check, mask, inj, en, pol):
        assignment = {f"d{i}": bool((data >> i) & 1) for i in range(16)}
        assignment |= {f"ch{i}": bool((check >> i) & 1) for i in range(6)}
        assignment |= {f"mk{i}": bool((mask >> i) & 1) for i in range(8)}
        assignment |= {"inj": inj, "en": en, "pol": pol}
        return assignment

    def test_random_vectors(self):
        circuit = get_circuit("c1908")
        rng = random.Random(3)
        for _ in range(200):
            args = (
                rng.getrandbits(16),
                rng.getrandbits(6),
                rng.getrandbits(8),
                bool(rng.getrandbits(1)),
                bool(rng.getrandbits(1)),
                bool(rng.getrandbits(1)),
            )
            assert circuit.evaluate_outputs(
                self._assignment(*args)
            ) == c1908_reference(*args)

    def test_signatures_skip_powers_of_two(self):
        from repro.benchcircuits.c1908 import signature

        signatures = [signature(i) for i in range(16)]
        assert len(set(signatures)) == 16
        for s in signatures:
            assert s != 0 and s & (s - 1) != 0

    def test_nand_expanded(self):
        from repro.circuit.gates import GateType

        circuit = get_circuit("c1908")
        assert not any(
            g.gate_type in (GateType.XOR, GateType.XNOR)
            for g in circuit.gates()
        )
