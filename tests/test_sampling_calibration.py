"""Statistical calibration: sampled CIs versus exact detectabilities.

The sampled mode's whole claim is that its nominal 95% intervals are
honest. The fast arm cross-validates against exact Difference
Propagation on the two largest exhaustively-cheap circuits; the slow
arm runs the acceptance battery on the three big ISCAS circuits
(C432/C499/C1908) across three seeds. Both must keep empirical
coverage at or above the 93% gate (sequential stopping is slightly
anticonservative, which is why the gate concedes two points from the
nominal 95%).

Everything here is deterministic: pinned seeds, derandomized pattern
substreams, exact ground truth. The fast arm therefore pins the exact
coverage count, not just the gate — any drift in the sampler's RNG
discipline shows up as a changed ratio before it shows up as a
coverage failure.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from repro.verify.sampled import (
    CALIBRATION_CIRCUITS,
    CALIBRATION_SEEDS,
    CALIBRATION_THRESHOLD,
    calibration_fault_sets,
    run_calibration,
)


@pytest.fixture(autouse=True)
def _default_sampling_policy(monkeypatch):
    """Calibration numbers are pinned under the default ci policy."""
    for var in ("REPRO_MODE", "REPRO_CI_WIDTH", "REPRO_PATTERN_BUDGET"):
        monkeypatch.delenv(var, raising=False)


class TestFaultSets:
    def test_every_stratum_is_represented(self):
        from repro.benchcircuits import get_circuit
        from repro.sampling.strata import stratum_key

        circuit = get_circuit("c95")
        models = dict(calibration_fault_sets(circuit))
        assert set(models) == {"stuck-at", "bridging"}
        stuck_strata = {
            stratum_key(circuit, f) for f in models["stuck-at"]
        }
        assert any(s.startswith("stuck-stem/") for s in stuck_strata)
        assert any(s.startswith("stuck-branch/") for s in stuck_strata)
        bridge_strata = {
            stratum_key(circuit, f) for f in models["bridging"]
        }
        assert bridge_strata == {"bridge-and", "bridge-or"}

    def test_fault_sets_are_seed_stable(self):
        from repro.benchcircuits import get_circuit

        circuit = get_circuit("c95")
        assert calibration_fault_sets(circuit) == calibration_fault_sets(
            circuit
        )


class TestFastArm:
    def test_coverage_on_the_exhaustive_circuits(self):
        report = run_calibration(
            circuits=("c95", "alu181"), seeds=(0, 1)
        )
        assert report.ok, report.render()
        assert report.coverage >= CALIBRATION_THRESHOLD
        # Fully deterministic: pin the exact tally so RNG-discipline
        # drift is visible even while coverage stays above the gate.
        assert report.trials == 216
        assert report.covered == 201
        assert "calibration PASSED" in report.render()

    def test_cells_cover_every_model_and_seed(self):
        report = run_calibration(circuits=("c95",), seeds=(0, 1))
        combos = {(c.model, c.seed) for c in report.cells}
        assert combos == {
            ("stuck-at", 0),
            ("stuck-at", 1),
            ("bridging", 0),
            ("bridging", 1),
        }

    def test_empty_report_is_not_ok(self):
        report = run_calibration(circuits=(), seeds=())
        assert report.trials == 0
        assert not report.ok


@pytest.mark.slow
class TestAcceptanceBattery:
    def test_big_three_across_seeds(self):
        """Acceptance criterion: >=93% empirical coverage on C432,
        C499 and C1908 under stuck-at and bridging across three seeds,
        against exact DP ground truth."""
        report = run_calibration(
            circuits=CALIBRATION_CIRCUITS, seeds=CALIBRATION_SEEDS
        )
        assert report.ok, report.render()
        circuits = {cell.circuit for cell in report.cells}
        assert circuits == set(CALIBRATION_CIRCUITS)
        assert {cell.seed for cell in report.cells} == set(
            CALIBRATION_SEEDS
        )
