"""Difference Propagation versus the exhaustive oracle — the core claim.

The engine's complete test sets must agree with brute force *exactly*:
same detectabilities, same test vectors, same PO observability, for
stuck-at faults (stems and branches) and bridging faults alike.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.engine import DifferencePropagation
from repro.core.symbolic import CircuitFunctions
from repro.faults.bridging import BridgeKind, BridgingFault, enumerate_nfbfs
from repro.faults.lines import Line
from repro.faults.stuck_at import StuckAtFault, all_stuck_at_faults
from repro.simulation.truthtable import TruthTableSimulator

from tests.strategies import circuits


def _words_agree(circuit, analysis, simulator, fault) -> bool:
    """Compare the OBDD test set with the simulator's detection word."""
    word = simulator.detection_word(fault)
    if analysis.test_count() != bin(word).count("1"):
        return False
    for assignment in analysis.tests.minterms():
        vector = sum(
            1 << i for i, net in enumerate(circuit.inputs) if assignment[net]
        )
        if not (word >> vector) & 1:
            return False
    return True


class TestStuckAtExactness:
    @pytest.mark.parametrize("circuit_name", ["c17", "fulladder"])
    def test_every_fault_matches_brute_force(self, circuit_name, request):
        circuit = request.getfixturevalue(circuit_name)
        engine = DifferencePropagation(circuit)
        simulator = TruthTableSimulator(circuit)
        for fault in all_stuck_at_faults(circuit):
            analysis = engine.analyze(fault)
            assert analysis.detectability == simulator.detectability(fault)
            assert _words_agree(circuit, analysis, simulator, fault)

    def test_branch_faults_differ_from_stem_faults(self, c17):
        """A fanout branch fault must NOT be treated as a stem fault."""
        engine = DifferencePropagation(c17)
        # G11 fans out to G16 and G19; the branch fault only enters G16.
        stem = engine.analyze(StuckAtFault(Line("G11"), True))
        branch = engine.analyze(StuckAtFault(Line("G11", "G16", 1), True))
        assert stem.tests != branch.tests

    def test_po_observability_matches_simulation(self, c95):
        engine = DifferencePropagation(c95)
        simulator = TruthTableSimulator(c95)
        for fault in all_stuck_at_faults(c95)[::7]:
            analysis = engine.analyze(fault)
            observable = set()
            injection_word = simulator.detection_word(fault)
            if injection_word:
                from repro.simulation import _engine as sim_engine
                from repro.simulation.injection import injection_for

                faulty = sim_engine.faulty_pass(
                    c95,
                    {n: simulator.good_word(n) for n in c95.nets},
                    injection_for(fault),
                    simulator.mask,
                )
                observable = {
                    po
                    for po in c95.outputs
                    if faulty[po] != simulator.good_word(po)
                }
            assert analysis.observable_pos == observable

    def test_undetectable_redundant_fault(self, c1908=None):
        """The c1908 surrogate's redundant compare cone has undetectable faults."""
        from repro.benchcircuits import get_circuit

        circuit = get_circuit("c1908")
        engine = DifferencePropagation(circuit)
        # cmp gates feed only erra, which single|uncorr already implies;
        # at least one fault in that cone must be undetectable.
        cone_faults = [
            StuckAtFault(Line("anycmp"), False),
            StuckAtFault(Line("anycmp"), True),
        ]
        detectable = [engine.analyze(f).is_detectable for f in cone_faults]
        assert not all(detectable)


class TestBridgingExactness:
    def test_all_c17_bridges_match_brute_force(self, c17):
        engine = DifferencePropagation(c17)
        simulator = TruthTableSimulator(c17)
        for kind in BridgeKind:
            for fault in enumerate_nfbfs(c17, kind):
                analysis = engine.analyze(fault)
                assert analysis.detectability == simulator.detectability(fault)
                assert _words_agree(c17, analysis, simulator, fault)

    def test_sampled_c95_bridges_match_brute_force(self, c95):
        engine = DifferencePropagation(c95)
        simulator = TruthTableSimulator(c95)
        for kind in BridgeKind:
            faults = list(enumerate_nfbfs(c95, kind))[::31]
            for fault in faults:
                analysis = engine.analyze(fault)
                assert analysis.detectability == simulator.detectability(fault)

    def test_and_or_bridges_differ(self, c17):
        engine = DifferencePropagation(c17)
        and_bf = engine.analyze(BridgingFault("G10", "G11", BridgeKind.AND))
        or_bf = engine.analyze(BridgingFault("G10", "G11", BridgeKind.OR))
        assert and_bf.tests != or_bf.tests


class TestEngineMechanics:
    def test_functions_are_shared_across_faults(self, c95):
        functions = CircuitFunctions(c95)
        engine = DifferencePropagation(c95, functions=functions)
        engine.analyze(StuckAtFault(Line("a0"), True))
        assert engine.functions is functions

    def test_rebuild_on_node_budget(self, c95):
        engine = DifferencePropagation(c95, rebuild_node_limit=1)
        before = engine.functions
        first = engine.analyze(StuckAtFault(Line("a0"), True))
        engine.analyze(StuckAtFault(Line("a1"), True))
        assert engine.functions is not before
        # Results from before the rebuild stay usable.
        assert first.tests.satcount() >= 0

    def test_rebuild_preserves_results(self, c95):
        loose = DifferencePropagation(c95)
        tight = DifferencePropagation(c95, rebuild_node_limit=1)
        for fault in all_stuck_at_faults(c95)[:20]:
            assert (
                loose.analyze(fault).detectability
                == tight.analyze(fault).detectability
            )

    def test_unsupported_fault_type(self, c17):
        engine = DifferencePropagation(c17)
        with pytest.raises(TypeError):
            engine.analyze("bogus")  # type: ignore[arg-type]

    def test_analyze_all(self, c17):
        engine = DifferencePropagation(c17)
        faults = all_stuck_at_faults(c17)[:5]
        analyses = list(engine.analyze_all(faults))
        assert [a.fault for a in analyses] == faults

    def test_pick_test_detects(self, fulladder):
        engine = DifferencePropagation(fulladder)
        simulator = TruthTableSimulator(fulladder)
        fault = StuckAtFault(Line("half"), False)
        test = engine.analyze(fault).pick_test()
        assert test is not None
        vector = sum(
            1 << i for i, net in enumerate(fulladder.inputs) if test[net]
        )
        assert (simulator.detection_word(fault) >> vector) & 1


@settings(max_examples=20, deadline=None)
@given(circuits(max_inputs=4, max_gates=12))
def test_dp_equals_brute_force_on_random_circuits(circuit):
    """The headline property: DP is exact on arbitrary circuits."""
    engine = DifferencePropagation(circuit)
    simulator = TruthTableSimulator(circuit)
    for fault in all_stuck_at_faults(circuit):
        assert engine.analyze(fault).detectability == simulator.detectability(
            fault
        )


@settings(max_examples=12, deadline=None)
@given(circuits(max_inputs=4, max_gates=10))
def test_dp_equals_brute_force_on_random_bridges(circuit):
    engine = DifferencePropagation(circuit)
    simulator = TruthTableSimulator(circuit)
    for kind in BridgeKind:
        for fault in list(enumerate_nfbfs(circuit, kind))[:25]:
            assert engine.analyze(fault).detectability == simulator.detectability(
                fault
            )
