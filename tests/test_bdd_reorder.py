"""Dynamic variable reordering: in-place, semantics-preserving sifting.

The hazards these tests pin down:

* an adjacent-level swap — and therefore a whole :meth:`BDDManager.sift`
  pass — must never change any live function's semantics, satcount or
  *node id* (raw int handles and ``Function`` objects are pervasive);
* the unique table, computed table and counting memo must never serve
  entries minted under the old order;
* sifting must actually shrink order-sensitive shapes (the classic
  pairing function) and must stop at the ``max_growth`` guard;
* reorder telemetry must flow end to end: ``ReorderStats`` →
  ``ManagerStats`` → engine counters → ``ChunkStat`` /
  ``CampaignResult``;
* with ``REPRO_REORDER=1`` every golden fixture stays bit-identical —
  reordering may only ever change memory and runtime.
"""

from __future__ import annotations

import itertools
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.function import Function
from repro.bdd.manager import FALSE, TRUE, BDDError, BDDManager, ReorderStats
from repro.benchcircuits import get_circuit
from repro.core.engine import DifferencePropagation, env_reorder
from repro.core.symbolic import CircuitFunctions
from repro.faults.stuck_at import collapsed_checkpoint_faults
from repro.verify import golden
from repro.verify.conformance import ENGINES

from tests.strategies import BOOLEXPR_NAMES, boolexprs, build_bdd

GOLDEN_DIR = Path(__file__).parent / "golden"


def truth_table(manager: BDDManager, node: int) -> tuple[bool, ...]:
    """Exhaustive evaluation over the shared five-variable space.

    Evaluation is by variable *name*, so the table is invariant under
    any reordering that preserves semantics — exactly the oracle a
    reorder test needs.
    """
    return tuple(
        manager.evaluate(node, dict(zip(BOOLEXPR_NAMES, values)))
        for values in itertools.product(
            (False, True), repeat=len(BOOLEXPR_NAMES)
        )
    )


def fresh_manager() -> BDDManager:
    return BDDManager(BOOLEXPR_NAMES)


def pairing_manager(pairs: int = 3) -> tuple[BDDManager, int]:
    """The canonical order-sensitive function ⋁ aᵢ∧bᵢ under the worst
    order (all a's before all b's) — exponential declared, linear once
    the pairs interleave."""
    names = [f"a{i}" for i in range(pairs)] + [f"b{i}" for i in range(pairs)]
    m = BDDManager(names)
    f = FALSE
    for i in range(pairs):
        f = m.apply_or(f, m.apply_and(m.var(f"a{i}"), m.var(f"b{i}")))
    return m, f


# ----------------------------------------------------------------------
# swap_adjacent: the primitive
# ----------------------------------------------------------------------
class TestSwapAdjacent:
    @given(
        expr=boolexprs(),
        level=st.integers(0, len(BOOLEXPR_NAMES) - 2),
    )
    @settings(max_examples=60)
    def test_swap_preserves_semantics_and_ids(self, expr, level):
        m = fresh_manager()
        f = Function(m, build_bdd(m, expr))
        node = f.node
        before = truth_table(m, node)
        count = m.satcount(node)
        stats = m.swap_adjacent(level)
        assert f.node == node  # ids never move
        assert truth_table(m, node) == before
        assert m.satcount(node) == count
        assert stats.swaps == 1

    @given(
        expr=boolexprs(),
        level=st.integers(0, len(BOOLEXPR_NAMES) - 2),
    )
    @settings(max_examples=40)
    def test_double_swap_restores_the_order(self, expr, level):
        m = fresh_manager()
        f = Function(m, build_bdd(m, expr))
        before = truth_table(m, f.node)
        order = m.var_names
        m.swap_adjacent(level)
        swapped = list(order)
        swapped[level], swapped[level + 1] = swapped[level + 1], swapped[level]
        assert m.var_names == tuple(swapped)
        m.swap_adjacent(level)
        assert m.var_names == order
        assert truth_table(m, f.node) == before

    @given(expr=boolexprs(), level=st.integers(0, len(BOOLEXPR_NAMES) - 2))
    @settings(max_examples=40)
    def test_operations_after_swap_are_correct(self, expr, level):
        """The computed table and counting memo must not leak stale
        levels: fresh applications after a swap stay exact."""
        m = fresh_manager()
        f = build_bdd(m, expr)
        m.incref(f)
        m.swap_adjacent(level)
        g = m.apply_xor(f, m.var("a"))
        expected = tuple(
            row_f != (values[0])
            for row_f, values in zip(
                truth_table(m, f),
                itertools.product((False, True), repeat=len(BOOLEXPR_NAMES)),
            )
        )
        assert truth_table(m, g) == expected
        assert m.apply_xor(f, f) == FALSE
        assert m.apply_or(f, TRUE) == TRUE

    def test_rejects_out_of_range_levels(self):
        m = fresh_manager()
        top = m.num_vars - 1
        with pytest.raises(BDDError):
            m.swap_adjacent(-1)
        with pytest.raises(BDDError):
            m.swap_adjacent(top)

    def test_counts_swaps_in_manager_stats(self):
        m = fresh_manager()
        Function(m, build_bdd(m, ("and", "a", ("or", "b", "c"))))
        m.swap_adjacent(0)
        m.swap_adjacent(1)
        assert m.reorder_swaps == 2
        stats = m.stats()
        assert stats.reorder_swaps == 2
        assert stats.reorder_runs == 0  # swaps alone are not a pass


# ----------------------------------------------------------------------
# sift: the full pass
# ----------------------------------------------------------------------
class TestSift:
    @given(expr=boolexprs())
    @settings(max_examples=40)
    def test_sift_preserves_semantics_and_ids(self, expr):
        m = fresh_manager()
        f = Function(m, build_bdd(m, expr))
        node = f.node
        before = truth_table(m, node)
        count = m.satcount(node)
        stats = m.sift()
        assert f.node == node
        assert truth_table(m, node) == before
        assert m.satcount(node) == count
        assert stats.nodes_after <= stats.nodes_before

    def test_sift_untangles_the_pairing_function(self):
        m, f = pairing_manager(pairs=3)
        root = Function(m, f)
        declared = m.num_live_nodes
        stats = m.sift()
        assert stats.nodes_after < stats.nodes_before
        assert m.num_live_nodes < declared
        # under any interleaved order the pairing function is linear:
        # 2 internal nodes per pair plus the terminals
        assert m.num_live_nodes <= 2 * 3 + 2
        assert m.satcount(root.node) == 37  # 3-pair OR over 6 vars

    def test_second_sift_is_a_fixpoint(self):
        m, f = pairing_manager(pairs=3)
        root = Function(m, f)  # bound: keeps the diagram rooted
        first = m.sift()
        second = m.sift()
        assert second.nodes_before == first.nodes_after
        assert second.nodes_after == first.nodes_after

    def test_rejects_max_growth_below_one(self):
        m = fresh_manager()
        with pytest.raises(BDDError):
            m.sift(max_growth=0.5)

    def test_max_vars_caps_the_pass(self):
        m, f = pairing_manager(pairs=3)
        root = Function(m, f)  # bound: keeps the diagram rooted
        m.sift(max_vars=0)
        assert m.last_reorder is not None
        assert m.last_reorder.swaps == 0

    def test_telemetry_flows_to_manager_stats(self):
        m, f = pairing_manager(pairs=3)
        root = Function(m, f)  # bound: keeps the diagram rooted
        stats = m.sift()
        assert m.reorder_runs == 1
        assert m.reorder_swaps == stats.swaps > 0
        assert m.last_reorder == stats
        assert stats.seconds >= 0
        assert 0 < stats.reduction <= 1
        mstats = m.stats()
        assert mstats.reorder_runs == 1
        assert mstats.reorder_swaps == stats.swaps

    def test_gc_after_sift_keeps_roots_alive(self):
        m = fresh_manager()
        f = Function(m, build_bdd(m, ("or", ("and", "a", "b"), "e")))
        before = truth_table(m, f.node)
        m.sift()
        m.gc()
        assert truth_table(m, f.node) == before

    def test_sift_collects_unregistered_garbage(self):
        """sift shares gc()'s root contract: raw ints not incref'd or
        wrapped die in the pre-pass sweep (documented, like gc)."""
        m = fresh_manager()
        keep = Function(m, build_bdd(m, ("and", "a", "b")))
        m.apply_or(m.var("c"), m.var("d"))  # dropped on the floor
        live_before = m.num_live_nodes
        stats = m.sift()
        assert stats.nodes_before < live_before
        assert truth_table(m, keep.node) == truth_table(m, keep.node)


# ----------------------------------------------------------------------
# the engine trigger and the environment switch
# ----------------------------------------------------------------------
class TestEngineReorder:
    def test_env_reorder_parsing(self):
        for raw in ("1", "true", "yes", "on", "anything"):
            assert env_reorder({"REPRO_REORDER": raw})
        for raw in ("", "0", "false", "no", "off", " 0 ", "FALSE"):
            assert not env_reorder({"REPRO_REORDER": raw})
        assert not env_reorder({})

    def test_constructor_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_REORDER", "1")
        c17 = get_circuit("c17")
        assert DifferencePropagation(c17, reorder=False).reorder is False
        monkeypatch.delenv("REPRO_REORDER")
        assert DifferencePropagation(c17, reorder=True).reorder is True
        assert DifferencePropagation(c17).reorder is False

    def test_reorder_engine_is_bit_identical(self):
        circuit = get_circuit("c95")
        faults = collapsed_checkpoint_faults(circuit)
        plain = DifferencePropagation(circuit)
        sifted = DifferencePropagation(circuit, reorder=True)
        assert sifted.reorder_runs >= 1  # the initial post-build pass
        assert sifted.reorder_nodes_after <= sifted.reorder_nodes_before
        for fault in faults:
            assert (
                plain.analyze(fault).detectability
                == sifted.analyze(fault).detectability
            ), fault

    def test_shared_functions_are_not_resifted(self):
        """Campaigns reuse one CircuitFunctions across engines; a second
        engine must not pay a full pass for an already-sifted table."""
        functions = CircuitFunctions(get_circuit("c17"))
        first = DifferencePropagation(
            get_circuit("c17"), functions=functions, reorder=True
        )
        assert functions.manager.reorder_runs == 1
        second = DifferencePropagation(
            get_circuit("c17"), functions=functions, reorder=True
        )
        assert functions.manager.reorder_runs == 1
        assert second.reorder_runs == 0

    @pytest.mark.parametrize(
        "path",
        # exact fixtures only: the *_sampled.json twins never touch the
        # OBDD path, so reorder invariance does not apply to them
        sorted(
            p
            for p in GOLDEN_DIR.glob("*.json")
            if not p.stem.endswith("_sampled")
        ),
        ids=lambda p: p.stem,
    )
    def test_golden_fixtures_bit_identical_under_reorder(
        self, path, monkeypatch
    ):
        """REPRO_REORDER=1 must reproduce every committed fixture
        verbatim — reordering may only change memory and runtime."""
        monkeypatch.setenv("REPRO_REORDER", "1")
        document = golden.load_fixture(path)
        circuit = get_circuit(document["circuit"])
        faults = [
            golden.fault_from_dict(record["fault"])
            for record in document["faults"]
        ]
        functions = CircuitFunctions(circuit)
        reports = ENGINES["dp"].run(circuit, faults, functions)
        assert functions.manager.reorder_runs >= 1
        from fractions import Fraction

        num_vectors = document["num_vectors"]
        for record, report in zip(document["faults"], reports):
            context = (path.stem, record["label"])
            assert report.detectability == Fraction(
                record["test_count"], num_vectors
            ), context
            assert report.test_count == record["test_count"], context
            assert (
                sorted(report.observable_pos) == record["observable_pos"]
            ), context


# ----------------------------------------------------------------------
# campaign-level telemetry
# ----------------------------------------------------------------------
class TestCampaignReorderTelemetry:
    @pytest.fixture(autouse=True)
    def _fresh_caches(self):
        from repro.experiments.campaigns import clear_campaign_caches

        clear_campaign_caches()
        yield
        clear_campaign_caches()

    def test_campaign_records_reorder_telemetry(self):
        from repro.experiments.campaigns import stuck_at_campaign
        from repro.experiments.config import Scale

        baseline = stuck_at_campaign(
            "c17", Scale(name="reorder-unit-off", circuits=("c17",))
        )
        sifted = stuck_at_campaign(
            "c17",
            Scale(name="reorder-unit-on", circuits=("c17",), reorder=True),
        )
        assert sifted.detectabilities() == baseline.detectabilities()
        assert sifted.reorder_runs() >= 1
        assert baseline.reorder_runs() == 0
        chunk = sifted.chunk_stats[0]
        assert chunk.reorder_runs >= 1
        assert chunk.reorder_swaps >= 0
        assert chunk.reorder_nodes_after <= chunk.reorder_nodes_before

    def test_scale_effective_reorder(self, monkeypatch):
        from repro.experiments.config import Scale

        monkeypatch.delenv("REPRO_REORDER", raising=False)
        assert Scale(name="x").effective_reorder() is False
        assert Scale(name="x", reorder=True).effective_reorder() is True
        monkeypatch.setenv("REPRO_REORDER", "1")
        assert Scale(name="x").effective_reorder() is True
        assert Scale(name="x", reorder=False).effective_reorder() is False

    def test_manifest_records_reorder(self):
        from repro import obs
        from repro.experiments.config import Scale

        manifest = obs.RunManifest.collect(
            scale=Scale(name="x", reorder=True)
        )
        assert manifest.reorder is True
        assert ReorderStats(1, 10, 8, 0.1).reduction == pytest.approx(0.2)
