"""Shared fixtures and Hypothesis profiles for the test suite.

Two Hypothesis profiles are registered:

* ``ci`` — derandomized (the seed is a pure function of each test,
  so every CI run explores the identical example sequence) with no
  deadline; select with ``HYPOTHESIS_PROFILE=ci``. The CI workflow
  pins this so property-test failures reproduce across the matrix.
* ``dev`` (default) — random exploration, no deadline (BDD campaigns
  have highly variable per-example cost).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.bdd import BDDManager, Function
from repro.benchcircuits import get_circuit
from repro.circuit import CircuitBuilder

settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def manager() -> BDDManager:
    return BDDManager(["a", "b", "c", "d"])


@pytest.fixture
def abcd(manager: BDDManager) -> tuple[Function, ...]:
    return tuple(Function(manager, manager.var(n)) for n in "abcd")


@pytest.fixture(scope="session")
def c17():
    return get_circuit("c17")


@pytest.fixture(scope="session")
def fulladder():
    return get_circuit("fulladder")


@pytest.fixture(scope="session")
def c95():
    return get_circuit("c95")


@pytest.fixture(scope="session")
def alu181():
    return get_circuit("alu181")


@pytest.fixture
def tiny_circuit():
    """y = (a & b) | ~c with an internal fanout point."""
    b = CircuitBuilder("tiny")
    a, bb, c = b.inputs("a", "b", "c")
    conj = b.and_(a, bb, name="conj")
    nc = b.not_(c, name="nc")
    b.output(b.or_(conj, nc, name="y"))
    b.output(b.xor(conj, nc, name="z"))
    return b.build()
