"""Unit tests for the Function wrapper."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.bdd import BDDManager, Function
from repro.bdd.manager import BDDError


class TestAlgebra:
    def test_operators(self, manager, abcd):
        a, b, c, _ = abcd
        f = (a & b) | ~c
        assert f.satcount() == 10  # over 4 vars: (ab + c̄) has 10 minterms
        assert (f ^ f).is_zero
        assert (f | ~f).is_one

    def test_xnor_and_implies(self, abcd):
        a, b, *_ = abcd
        assert a.xnor(b) == ~(a ^ b)
        assert a.implies(b) == (~a | b)

    def test_ite(self, abcd):
        a, b, c, _ = abcd
        assert a.ite(b, c) == ((a & b) | (~a & c))

    def test_mixing_managers_rejected(self, abcd):
        other = BDDManager(["a"])
        foreign = Function(other, other.var("a"))
        with pytest.raises(BDDError):
            _ = abcd[0] & foreign

    def test_non_function_operand_rejected(self, abcd):
        with pytest.raises(TypeError):
            _ = abcd[0] & 1  # type: ignore[operator]


class TestPredicates:
    def test_constants(self, manager):
        assert Function.true(manager).is_one
        assert Function.false(manager).is_zero
        assert Function.true(manager).is_constant

    def test_truthiness_is_ambiguous(self, abcd):
        with pytest.raises(TypeError):
            bool(abcd[0])

    def test_equality_and_hash(self, manager, abcd):
        a, b, *_ = abcd
        assert (a & b) == (b & a)
        assert hash(a & b) == hash(b & a)
        assert (a & b) != (a | b)
        assert (a & b) != "not a function"


class TestAnalysis:
    def test_density_is_syndrome(self, abcd):
        a, b, *_ = abcd
        assert (a & b).density() == Fraction(1, 4)
        assert (a | b).density() == Fraction(3, 4)

    def test_support(self, abcd):
        a, _, c, _ = abcd
        assert (a ^ c).support() == frozenset({"a", "c"})

    def test_restrict_compose_quantify(self, abcd):
        a, b, c, _ = abcd
        f = (a & b) | c
        assert f.restrict("c", True).is_one
        assert f.compose("c", a & b) == (a & b)
        assert f.exists("a", "b") == f.exists("a").exists("b")
        assert f.forall("c") == (a & b)

    def test_minterm_roundtrip(self, abcd):
        a, b, *_ = abcd
        f = a & ~b
        assignment = f.pick_minterm()
        assert assignment is not None
        assert f.evaluate(assignment)
        assert len(list(f.minterms())) == f.satcount()

    def test_repr(self, abcd):
        a, b, *_ = abcd
        assert "support" in repr(a & b)
        assert repr(a & ~a) == "Function(FALSE)"
        assert repr(a | ~a) == "Function(TRUE)"
