"""Tests for the bench-trajectory regression sentinel.

The sentinel's contract: trajectories are append-only JSONL keyed by
the manifest's (scale, engine, seed); the baseline is the median of
the comparable window with a MAD-widened relative tolerance; a ≥20 %
slowdown on a time-like metric fails the check while ≤tolerance jitter
passes; benches without comparable history seed quietly instead of
failing; and the markdown dashboard renders every stored bench.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import __main__ as obs_cli
from repro.obs import perf
from repro.obs.bench import write_bench_artifact
from repro.obs.manifest import RunManifest


def _entry(
    bench: str = "bitparallel",
    seconds: float = 1.0,
    speedup: float = 4.0,
    key: dict | None = None,
) -> dict:
    return {
        "schema": perf.SCHEMA,
        "bench": bench,
        "recorded_utc": "2026-08-08T00:00:00Z",
        "metrics": {
            "batch_seconds": seconds,
            "kernel_speedup": speedup,
            "faults": 464.0,
        },
        "key": key or {"scale": "ci", "engine": "dp", "seed": 0},
        "provenance": {
            "git_sha": "deadbeef",
            "python": "3.12",
            "numpy": "2.4.6",
            "hostname": "ci",
        },
    }


# ----------------------------------------------------------------------
# Direction inference & entry projection
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    ("metric", "direction"),
    [
        ("serial_seconds", "down"),
        ("campaign_wall_seconds", "down"),
        ("parallel_speedup", "up"),
        ("kernel_throughput", "up"),
        ("faults_per_second", "up"),
        ("faults", None),
        ("peak_live_nodes", None),
    ],
)
def test_gated_direction(metric, direction):
    assert perf.gated_direction(metric) == direction


def test_entry_from_artifact_projects_numeric_payload():
    document = {
        "schema": "repro.bench/1",
        "name": "gc",
        "payload": {
            "gc_seconds": 2.5,
            "gc_sweeps": 7,
            "exact": True,  # bools are not metrics
            "note": "prose",  # strings are not metrics
            "metrics": {"nested": 1},  # nested snapshots stay behind
        },
        "manifest": {
            "scale": "ci",
            "engine": "dp",
            "seed": 0,
            "git_sha": "abc123",
            "python": "3.12.1",
            "numpy": "2.4.6",
            "hostname": "box",
            "created_utc": "2026-08-08T12:00:00Z",
        },
    }
    entry = perf.entry_from_artifact(document)
    assert entry["bench"] == "gc"
    assert entry["metrics"] == {"gc_seconds": 2.5, "gc_sweeps": 7.0}
    assert entry["key"] == {"scale": "ci", "engine": "dp", "seed": 0}
    assert entry["provenance"]["git_sha"] == "abc123"
    assert entry["recorded_utc"] == "2026-08-08T12:00:00Z"


def test_trajectory_append_and_load_roundtrip(tmp_path):
    history = tmp_path / "history"
    first = _entry(seconds=1.0)
    second = _entry(seconds=1.1)
    path = perf.append_entry(history, first)
    assert perf.append_entry(history, second) == path
    assert path == perf.trajectory_path(history, "bitparallel")
    # Append-only: two JSONL lines, in insertion order.
    assert len(path.read_text().splitlines()) == 2
    assert perf.load_trajectory(path) == [first, second]
    assert perf.load_trajectory(history / "missing.jsonl") == []


def test_comparable_keys_partition_history():
    ci = _entry(key={"scale": "ci", "engine": "dp", "seed": 0})
    paper = _entry(key={"scale": "paper", "engine": "dp", "seed": 0})
    bitp = _entry(key={"scale": "ci", "engine": "bitparallel", "seed": 0})
    assert perf.comparable(ci, ci)
    assert not perf.comparable(ci, paper)
    assert not perf.comparable(ci, bitp)


# ----------------------------------------------------------------------
# Robust thresholds
# ----------------------------------------------------------------------
def test_robust_baseline_ignores_one_outlier():
    values = [1.0, 1.02, 0.98, 1.01, 50.0]
    median, scaled_mad = perf.robust_baseline(values)
    assert median == pytest.approx(1.0, abs=0.02)
    assert scaled_mad < 0.1  # the outlier widened nothing catastrophic


def test_tolerance_has_a_relative_floor():
    assert perf.tolerance(1.0, 0.0) == perf.REL_FLOOR
    assert perf.tolerance(0.0, 0.0) == perf.REL_FLOOR
    # Noisy history widens the band beyond the floor: 3·MAD/median.
    assert perf.tolerance(1.0, 0.1) == pytest.approx(0.3)


def test_zero_median_tolerance_never_divides():
    """Regression: a baseline window of all zeros used to reach
    ``MAD_K * scaled_mad / 0`` — any nonzero MAD raised
    ZeroDivisionError inside the gate."""
    assert perf.tolerance(0.0, 0.5) == perf.REL_FLOOR


def test_all_zero_baseline_never_gates():
    """Regression: a degenerate all-zero history (e.g. a timing-disabled
    run recorded 0.0 seconds) must not flag the first real measurement
    as an infinite regression — the fresh value seeds the trajectory."""
    history = [_entry(seconds=0.0) for _ in range(8)]
    findings = perf.check_entry(_entry(seconds=1.25), history)
    by_metric = {f.metric: f for f in findings}
    zeroed = by_metric["batch_seconds"]
    assert zeroed.baseline == 0.0
    assert not zeroed.regressed
    assert "ok" in zeroed.render()


# ----------------------------------------------------------------------
# check_entry: the regression gate itself
# ----------------------------------------------------------------------
def _history(n: int = 8, seconds: float = 1.0) -> list[dict]:
    # Tiny deterministic jitter (±2 %) around the nominal value.
    return [
        _entry(seconds=seconds * (1 + 0.02 * (-1) ** i), speedup=4.0)
        for i in range(n)
    ]


def test_injected_20pct_slowdown_is_flagged():
    findings = perf.check_entry(_entry(seconds=1.25), _history())
    by_metric = {f.metric: f for f in findings}
    slow = by_metric["batch_seconds"]
    assert slow.direction == "down"
    assert slow.delta == pytest.approx(0.25, abs=0.03)
    assert slow.regressed
    assert "REGRESSION" in slow.render()
    # The ungated count metric produced no finding at all.
    assert "faults" not in by_metric


def test_within_tolerance_jitter_is_not_flagged():
    findings = perf.check_entry(_entry(seconds=1.05), _history())
    assert findings  # it was gated...
    assert not any(f.regressed for f in findings)  # ...and passed


def test_speedup_regression_direction_is_downward():
    ok = perf.check_entry(_entry(speedup=3.8), _history())
    assert not any(f.regressed for f in ok)
    findings = perf.check_entry(_entry(speedup=2.0), _history())
    drop = {f.metric: f for f in findings}["kernel_speedup"]
    assert drop.direction == "up" and drop.regressed


def test_noisy_history_widens_the_band():
    # ±20 % historical scatter: a 25 % excursion is indistinguishable
    # from that noise, so the MAD term must absorb it.
    noisy = [
        _entry(seconds=1.0 * (1 + 0.20 * (-1) ** i)) for i in range(10)
    ]
    findings = perf.check_entry(_entry(seconds=1.25), noisy)
    slow = {f.metric: f for f in findings}["batch_seconds"]
    assert slow.tolerance > perf.REL_FLOOR
    assert not slow.regressed


def test_incomparable_history_is_ignored():
    history = [
        _entry(seconds=1.0, key={"scale": "paper", "engine": "dp", "seed": 0})
    ]
    assert perf.check_entry(_entry(seconds=9.9), history) == []


def test_baseline_window_uses_newest_entries():
    old = [_entry(seconds=10.0) for _ in range(5)]
    recent = [_entry(seconds=1.0) for _ in range(perf.BASELINE_WINDOW)]
    findings = perf.check_entry(_entry(seconds=1.0), old + recent)
    base = {f.metric: f for f in findings}["batch_seconds"]
    assert base.baseline == pytest.approx(1.0)
    assert base.samples == perf.BASELINE_WINDOW


# ----------------------------------------------------------------------
# Directory-level record / check / report (the CLI surface)
# ----------------------------------------------------------------------
def _write_artifact(results_dir, seconds: float) -> None:
    manifest = RunManifest.collect(engine="dp")
    write_bench_artifact(
        results_dir,
        "kernel",
        {"batch_seconds": seconds, "faults": 464},
        manifest=manifest,
    )


def test_record_then_check_passes_then_fails_on_regression(tmp_path):
    results = tmp_path / "results"
    history = tmp_path / "history"

    # Seed the trajectory from three fresh recordings.
    for seconds in (1.00, 1.02, 0.99):
        _write_artifact(results, seconds)
        paths = perf.record(results, history)
        assert paths == [perf.trajectory_path(history, "kernel")]

    # Fresh run at baseline speed: green.
    _write_artifact(results, 1.01)
    findings, notes = perf.check(results, history)
    assert notes == []
    assert findings and not any(f.regressed for f in findings)
    assert obs_cli.main(
        ["perf", "check", "--results", str(results), "--history", str(history)]
    ) == 0

    # Inject a 30 % slowdown: the check (and the CLI) must fail.
    _write_artifact(results, 1.30)
    findings, _ = perf.check(results, history)
    assert any(f.regressed for f in findings)
    assert obs_cli.main(
        ["perf", "check", "--results", str(results), "--history", str(history)]
    ) == 1


def test_check_with_no_baseline_notes_instead_of_failing(tmp_path):
    results = tmp_path / "results"
    _write_artifact(results, 1.0)
    findings, notes = perf.check(results, tmp_path / "history")
    assert findings == []
    assert any("no comparable baseline" in note for note in notes)
    # A brand-new bench must be able to seed its own trajectory.
    assert obs_cli.main(
        ["perf", "check", "--results", str(results),
         "--history", str(tmp_path / "history")]
    ) == 0


def test_check_with_no_artifacts_notes(tmp_path):
    findings, notes = perf.check(tmp_path / "empty")
    assert findings == []
    assert any("no BENCH_" in note for note in notes)


def test_report_renders_markdown_dashboard(tmp_path):
    history = tmp_path / "history"
    for seconds in (1.0, 1.02, 0.98, 1.25):
        perf.append_entry(history, _entry(seconds=seconds))
    text = perf.report(history)
    assert text.startswith("# Benchmark trajectory")
    assert "## bitparallel" in text
    assert "| `batch_seconds` |" in text
    assert "lower-better" in text and "higher-better" in text
    assert "4 runs recorded" in text
    # The latest (1.25 s) run sits ~25 % above the 1.0 s baseline.
    assert "+25.0%" in text


def test_report_on_empty_store(tmp_path):
    text = perf.report(tmp_path / "nohistory")
    assert "_no trajectories under" in text


def test_recorded_entries_are_valid_json_lines(tmp_path):
    history = tmp_path / "history"
    perf.append_entry(history, _entry())
    line = perf.trajectory_path(history, "bitparallel").read_text().strip()
    parsed = json.loads(line)
    assert parsed["schema"] == perf.SCHEMA
    assert parsed["key"] == {"scale": "ci", "engine": "dp", "seed": 0}
