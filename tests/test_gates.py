"""Unit tests for gate semantics (bool and word evaluation)."""

from __future__ import annotations

import itertools

import pytest

from repro.circuit.gates import GateType, eval_gate, eval_gate_words

_TRUTH = {
    GateType.AND: lambda vs: all(vs),
    GateType.NAND: lambda vs: not all(vs),
    GateType.OR: lambda vs: any(vs),
    GateType.NOR: lambda vs: not any(vs),
    GateType.XOR: lambda vs: sum(vs) % 2 == 1,
    GateType.XNOR: lambda vs: sum(vs) % 2 == 0,
}


@pytest.mark.parametrize("gate_type", sorted(_TRUTH, key=lambda g: g.value))
@pytest.mark.parametrize("arity", [2, 3, 4])
def test_eval_gate_all_combinations(gate_type, arity):
    for values in itertools.product([False, True], repeat=arity):
        assert eval_gate(gate_type, values) == _TRUTH[gate_type](values)


def test_eval_unary_and_const():
    assert eval_gate(GateType.BUF, [True]) is True
    assert eval_gate(GateType.NOT, [True]) is False
    assert eval_gate(GateType.CONST0, []) is False
    assert eval_gate(GateType.CONST1, []) is True


def test_eval_gate_rejects_input_type():
    with pytest.raises(ValueError):
        eval_gate(GateType.INPUT, [])


@pytest.mark.parametrize("gate_type", sorted(_TRUTH, key=lambda g: g.value))
def test_words_agree_with_bools(gate_type):
    # 2 operands over 4-bit words enumerate all input pairs at once.
    a, b = 0b0101, 0b0011
    mask = 0b1111
    word = eval_gate_words(gate_type, [a, b], mask)
    for bit in range(4):
        values = [bool((a >> bit) & 1), bool((b >> bit) & 1)]
        assert bool((word >> bit) & 1) == eval_gate(gate_type, values)


def test_words_not_and_const():
    mask = 0b1111
    assert eval_gate_words(GateType.NOT, [0b0101], mask) == 0b1010
    assert eval_gate_words(GateType.BUF, [0b0101], mask) == 0b0101
    assert eval_gate_words(GateType.CONST0, [], mask) == 0
    assert eval_gate_words(GateType.CONST1, [], mask) == mask


def test_words_stay_nonnegative():
    mask = (1 << 256) - 1
    word = eval_gate_words(GateType.NOR, [0, 0], mask)
    assert word == mask and word >= 0


class TestGateTypeMetadata:
    def test_controlling_values(self):
        assert GateType.AND.controlling_value is False
        assert GateType.NAND.controlling_value is False
        assert GateType.OR.controlling_value is True
        assert GateType.NOR.controlling_value is True
        assert GateType.XOR.controlling_value is None

    def test_base_and_inverting(self):
        assert GateType.NAND.base is GateType.AND
        assert GateType.NOR.base is GateType.OR
        assert GateType.XNOR.base is GateType.XOR
        assert GateType.NOT.base is GateType.BUF
        assert GateType.NAND.is_inverting
        assert not GateType.AND.is_inverting

    def test_arities(self):
        assert GateType.NOT.min_arity == GateType.NOT.max_arity == 1
        assert GateType.AND.min_arity == 2
        assert GateType.AND.max_arity is None
