"""The sampled-mode oracle battery: every corruption class is caught.

Mirrors ``test_verify_oracles.py`` for the statistical mode: an honest
sampled campaign passes every consistency oracle, and each deliberate
corruption — broken bounds, misaccounted budgets, illegal stopping,
dropped strata — is caught by the oracle built for it.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction

import pytest

pytest.importorskip("numpy")

from repro.benchcircuits import get_circuit
from repro.experiments.campaigns import (
    CampaignResult,
    clear_campaign_caches,
    stuck_at_campaign,
)
from repro.experiments.config import get_scale
from repro.sampling.engine import SampledSettings
from repro.sampling.wilson import wilson_interval
from repro.verify.sampled import (
    check_sampled_campaign,
    run_sampled_conformance,
    sampled_record_violations,
    stratum_coverage_violations,
)


@pytest.fixture(scope="module")
def scale():
    return get_scale("ci")


@pytest.fixture(scope="module")
def settings(scale):
    return SampledSettings.from_scale(scale)


@pytest.fixture(scope="module")
def campaign(scale):
    clear_campaign_caches()
    result = stuck_at_campaign("c17", scale, mode="sampled")
    yield result
    clear_campaign_caches()


def _synthetic(record, detections, trials, spent=None):
    """A record whose interval honestly matches (detections, trials)
    but whose ``patterns_spent`` claims whatever the test needs."""
    interval = wilson_interval(detections, trials)
    return dataclasses.replace(
        record,
        detectability=Fraction(detections, trials),
        ci_low=interval.low,
        ci_high=interval.high,
        patterns_spent=spent if spent is not None else trials,
    )


class TestHonestCampaign:
    def test_passes_every_oracle(self, campaign, settings):
        assert check_sampled_campaign(campaign, settings) == []

    def test_record_oracles_pass_individually(self, campaign, settings):
        for record in campaign.results:
            assert (
                sampled_record_violations(
                    campaign.circuit, record, settings
                )
                == []
            )

    def test_stratum_plan_is_honored(self, campaign):
        assert stratum_coverage_violations(campaign) == []

    def test_planless_campaign_is_not_flagged(self, campaign):
        bare = dataclasses.replace(campaign, strata=())
        assert stratum_coverage_violations(bare) == []


class TestRecordOracles:
    def test_missing_interval_fields(self, campaign, settings):
        record = dataclasses.replace(campaign.results[0], ci_low=None)
        violations = sampled_record_violations(
            campaign.circuit, record, settings
        )
        assert [v.oracle for v in violations] == ["ci-missing"]

    def test_bounds_outside_unit_range(self, campaign, settings):
        record = dataclasses.replace(
            campaign.results[0], ci_low=-0.25, ci_high=1.5
        )
        violations = sampled_record_violations(
            campaign.circuit, record, settings
        )
        assert "ci-bounds-range" in {v.oracle for v in violations}

    def test_estimate_escaping_its_interval(self, campaign, settings):
        victim = next(
            r for r in campaign.results if 0 < r.detectability < 1
        )
        record = dataclasses.replace(
            victim,
            ci_low=float(victim.detectability) + 0.2,
            ci_high=min(1.0, float(victim.detectability) + 0.3),
        )
        violations = sampled_record_violations(
            campaign.circuit, record, settings
        )
        assert "ci-containment" in {v.oracle for v in violations}

    def test_misaccounted_budget_breaks_integrality(self, campaign, settings):
        """Off-by-one patterns_spent makes δ·spent non-integral — the
        signature the ``off-by-one-pattern-budget`` seeded defect has."""
        victim = next(
            r for r in campaign.results if 0 < r.detectability < 1
        )
        record = dataclasses.replace(
            victim, patterns_spent=victim.patterns_spent + 1
        )
        violations = sampled_record_violations(
            campaign.circuit, record, settings
        )
        assert "ci-consistency" in {v.oracle for v in violations}

    def test_drifted_bounds_fail_wilson_recomputation(
        self, campaign, settings
    ):
        victim = campaign.results[0]
        record = dataclasses.replace(victim, ci_high=victim.ci_high + 1e-6)
        violations = sampled_record_violations(
            campaign.circuit, record, settings
        )
        assert "ci-consistency" in {v.oracle for v in violations}

    def test_illegal_round_boundary(self, campaign, settings):
        record = _synthetic(campaign.results[0], 10, 300)
        violations = sampled_record_violations(
            campaign.circuit, record, settings
        )
        oracles = {v.oracle for v in violations}
        assert "stopping-rule" in oracles
        assert "ci-consistency" not in oracles  # the tally itself is honest

    def test_budget_overrun(self, campaign, settings):
        over = settings.pattern_budget * 2
        record = _synthetic(campaign.results[0], 0, over)
        violations = sampled_record_violations(
            campaign.circuit, record, settings
        )
        messages = [
            v.message for v in violations if v.oracle == "stopping-rule"
        ]
        assert any("exceeds the budget" in m for m in messages)

    def test_early_stop_with_a_loose_interval(self, campaign, settings):
        """128/256 has a ~0.061 half-width — stopping there with budget
        remaining violates the sequential rule."""
        interval = wilson_interval(128, 256)
        assert interval.half_width > settings.ci_width
        record = _synthetic(campaign.results[0], 128, 256)
        violations = sampled_record_violations(
            campaign.circuit, record, settings
        )
        messages = [
            v.message for v in violations if v.oracle == "stopping-rule"
        ]
        assert any("still above" in m for m in messages)


class TestStratumCoverage:
    def test_dropped_stratum_is_caught(self, campaign):
        victim = campaign.strata[0].name
        pruned = dataclasses.replace(
            campaign,
            results=tuple(
                r for r in campaign.results if r.stratum != victim
            ),
            strata=campaign.strata,
        )
        violations = stratum_coverage_violations(pruned)
        assert violations
        assert {v.oracle for v in violations} == {"stratum-coverage"}
        assert any(victim == v.fault for v in violations)

    def test_invented_stratum_is_caught(self, campaign):
        relabeled = dataclasses.replace(
            campaign,
            results=(
                dataclasses.replace(
                    campaign.results[0], stratum="stuck-imaginary/fo9"
                ),
            )
            + campaign.results[1:],
            strata=campaign.strata,
        )
        violations = stratum_coverage_violations(relabeled)
        assert any(
            "absent from the plan" in v.message for v in violations
        )


class TestCampaignLevel:
    def test_exactness_lie_is_caught(self, campaign, settings):
        liar = CampaignResult(
            circuit=campaign.circuit,
            results=campaign.results,
            exact=True,
            chunk_stats=campaign.chunk_stats,
            strata=campaign.strata,
        )
        violations = check_sampled_campaign(liar, settings)
        assert "sampled-exactness" in {v.oracle for v in violations}

    def test_conformance_sweep_is_clean(self, scale):
        clear_campaign_caches()
        report = run_sampled_conformance(circuits=("c17",), scale=scale)
        assert report.ok, report.render()
        assert len(report.cells) == 3  # stuck-at + both bridge kinds
        assert all(cell.patterns_spent > 0 for cell in report.cells)
        rendered = report.render()
        assert "all sampled invariants hold" in rendered
        clear_campaign_caches()


class TestSeededDefects:
    def test_new_defects_are_rostered_and_caught(self):
        from repro.verify.seeded import DEFECTS, run_seeded_self_check

        names = {defect.name for defect in DEFECTS}
        assert {
            "biased-stratum-sampler",
            "off-by-one-pattern-budget",
        } <= names
        report = run_seeded_self_check()
        assert report.ok, report.render()
        fired = {
            outcome.defect.name: set(outcome.oracles_fired)
            for outcome in report.outcomes
        }
        assert "stratum-coverage" in fired["biased-stratum-sampler"]
        assert "ci-consistency" in fired["off-by-one-pattern-budget"]
