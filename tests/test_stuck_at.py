"""Unit + property tests for checkpoint faults and equivalence collapsing."""

from __future__ import annotations

from hypothesis import given, settings

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.faults.lines import Line
from repro.faults.stuck_at import (
    StuckAtFault,
    all_stuck_at_faults,
    checkpoint_faults,
    collapse_faults,
    collapsed_checkpoint_faults,
    equivalence_classes,
)
from repro.simulation.truthtable import TruthTableSimulator

from tests.strategies import circuits


class TestCheckpointFaults:
    def test_pi_stems_always_included(self, c17):
        faults = checkpoint_faults(c17)
        for net in c17.inputs:
            assert StuckAtFault(Line(net), False) in faults
            assert StuckAtFault(Line(net), True) in faults

    def test_only_fanout_branches_included(self, tiny_circuit):
        faults = checkpoint_faults(tiny_circuit)
        branch_nets = {f.line.net for f in faults if f.line.is_branch}
        # conj and nc each feed two sinks; a, b, c are PIs with fanout 1.
        assert branch_nets == {"conj", "nc"}

    def test_both_polarities(self, c17):
        faults = checkpoint_faults(c17)
        assert len(faults) % 2 == 0
        lines = {f.line for f in faults}
        assert len(faults) == 2 * len(lines)


class TestEquivalenceClasses:
    def test_and_gate_rule(self):
        b = CircuitBuilder("and2")
        x, y = b.inputs("x", "y")
        b.output(b.and_(x, y, name="g"))
        circuit = b.build()
        classes = equivalence_classes(circuit)
        # x s-a-0 (as stem or branch), y s-a-0 and g s-a-0 all collapse.
        roots = {
            _root_of(classes, StuckAtFault(Line("x", "g", 0), False)),
            _root_of(classes, StuckAtFault(Line("y", "g", 1), False)),
            _root_of(classes, StuckAtFault(Line("g"), False)),
        }
        assert len(roots) == 1

    def test_inverter_maps_polarity(self):
        b = CircuitBuilder("inv")
        x = b.input("x")
        b.output(b.not_(x, name="g"))
        classes = equivalence_classes(b.build())
        assert _root_of(classes, StuckAtFault(Line("x"), False)) == _root_of(
            classes, StuckAtFault(Line("g"), True)
        )

    def test_xor_gate_creates_no_input_output_equivalence(self):
        b = CircuitBuilder("xor2")
        x, y = b.inputs("x", "y")
        b.output(b.xor(x, y, name="g"))
        classes = equivalence_classes(b.build())
        assert _root_of(classes, StuckAtFault(Line("x"), False)) != _root_of(
            classes, StuckAtFault(Line("g"), False)
        )

    def test_fanout_free_stem_equals_branch(self, c17):
        classes = equivalence_classes(c17)
        # G10 feeds only G22: stem and branch faults are the same class.
        assert _root_of(classes, StuckAtFault(Line("G10"), True)) == _root_of(
            classes, StuckAtFault(Line("G10", "G22", 0), True)
        )


class TestCollapse:
    def test_representatives_come_from_input_set(self, c17):
        checkpoints = checkpoint_faults(c17)
        collapsed = collapse_faults(c17, checkpoints)
        assert set(collapsed) <= set(checkpoints)
        assert len(collapsed) <= len(checkpoints)

    def test_collapsed_set_is_smaller_on_nand_circuit(self, c17):
        # C17 is all NANDs with shared fanins: collapsing must merge some.
        checkpoints = checkpoint_faults(c17)
        collapsed = collapsed_checkpoint_faults(c17)
        assert len(collapsed) < len(checkpoints)

    def test_deterministic(self, c95):
        assert collapsed_checkpoint_faults(c95) == collapsed_checkpoint_faults(c95)


def _root_of(classes, fault):
    for root, members in classes.items():
        if fault in members:
            return root
    raise AssertionError(f"fault {fault} not in any class")


@settings(max_examples=25, deadline=None)
@given(circuits(max_inputs=4, max_gates=10))
def test_equivalent_faults_have_identical_test_sets(circuit):
    """Structural equivalence must imply functional equivalence."""
    simulator = TruthTableSimulator(circuit)
    for members in equivalence_classes(circuit).values():
        if len(members) < 2:
            continue
        words = {simulator.detection_word(f) for f in members}
        assert len(words) == 1


@settings(max_examples=60, deadline=None)
@given(
    circuits(
        max_inputs=4,
        max_gates=8,
        # The checkpoint theorem is stated for unate primitive gates;
        # XOR/XNOR circuits can escape it, and indeed the benchmarks
        # where the paper applies checkpoints are NAND-level netlists.
        binary_gates=(GateType.AND, GateType.OR, GateType.NAND, GateType.NOR),
    )
)
def test_checkpoint_theorem_on_unate_circuits(circuit):
    """One arbitrary test per checkpoint fault detects every stuck-at.

    This is the checkpoint theorem (Bossen & Hong) that justifies the
    paper's fault-set choice: build a test set T containing exactly one
    detecting vector per detectable checkpoint fault, then verify T
    detects every detectable single stuck-at fault in the circuit.
    The theorem presumes an irredundant circuit, so redundant draws
    (which random reconvergent circuits often are) pass vacuously.
    """
    simulator = TruthTableSimulator(circuit)
    test_set = 0
    for fault in checkpoint_faults(circuit):
        word = simulator.detection_word(fault)
        if word == 0:
            return  # redundant circuit: theorem premise void
        test_set |= word & (-word)  # lowest detecting vector only
    for fault in all_stuck_at_faults(circuit):
        word = simulator.detection_word(fault)
        if word:
            assert word & test_set, f"{fault} escapes the checkpoint tests"
