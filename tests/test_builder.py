"""Unit tests for the fluent circuit builder."""

from __future__ import annotations

import itertools

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType


class TestBasics:
    def test_fresh_names_avoid_collisions(self):
        b = CircuitBuilder("x")
        b.input("n1")  # occupy the first auto name
        b.input("a")
        fresh = b.fresh()
        assert fresh != "n1"
        b.not_("a", name=fresh)  # the fresh name really is usable

    def test_input_vector_lsb_first(self):
        b = CircuitBuilder("x")
        bits = b.input_vector("d", 3)
        assert bits == ["d0", "d1", "d2"]

    def test_gate_methods_map_to_types(self):
        b = CircuitBuilder("x")
        a, bb = b.inputs("a", "b")
        circuit_nets = {
            b.and_(a, bb): GateType.AND,
            b.or_(a, bb): GateType.OR,
            b.nand(a, bb): GateType.NAND,
            b.nor(a, bb): GateType.NOR,
            b.xor(a, bb): GateType.XOR,
            b.xnor(a, bb): GateType.XNOR,
            b.not_(a): GateType.NOT,
            b.buf(a): GateType.BUF,
            b.const0(): GateType.CONST0,
            b.const1(): GateType.CONST1,
        }
        for net in circuit_nets:
            b.output(net)
        circuit = b.build()
        for net, expected in circuit_nets.items():
            assert circuit.gate(net).gate_type is expected


class TestTrees:
    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8])
    def test_xor_tree_parity(self, width):
        b = CircuitBuilder("x")
        bits = b.input_vector("d", width)
        b.output(b.xor_tree(bits, name="p"))
        circuit = b.build()
        for values in itertools.product([False, True], repeat=width):
            assignment = dict(zip(bits, values))
            assert circuit.evaluate_outputs(assignment)["p"] == (
                sum(values) % 2 == 1
            )

    @pytest.mark.parametrize("width", [1, 2, 3, 5])
    def test_xor_chain_matches_tree(self, width):
        bt, bc = CircuitBuilder("t"), CircuitBuilder("c")
        bits_t = bt.input_vector("d", width)
        bits_c = bc.input_vector("d", width)
        bt.output(bt.xor_tree(bits_t, name="p"))
        bc.output(bc.xor_chain(bits_c, name="p"))
        tree, chain = bt.build(), bc.build()
        for values in itertools.product([False, True], repeat=width):
            assignment = dict(zip(bits_t, values))
            assert tree.evaluate_outputs(assignment) == chain.evaluate_outputs(
                assignment
            )

    def test_and_or_trees(self):
        b = CircuitBuilder("x")
        bits = b.input_vector("d", 5)
        b.output(b.and_tree(bits, name="all"))
        b.output(b.or_tree(bits, name="any"))
        circuit = b.build()
        for values in itertools.product([False, True], repeat=5):
            out = circuit.evaluate_outputs(dict(zip(bits, values)))
            assert out["all"] == all(values)
            assert out["any"] == any(values)

    def test_named_tree_output_has_requested_name(self):
        b = CircuitBuilder("x")
        bits = b.input_vector("d", 4)
        net = b.xor_tree(bits, name="parity")
        assert net == "parity"

    def test_single_operand_named_tree_inserts_buffer(self):
        b = CircuitBuilder("x")
        (bit,) = b.input_vector("d", 1)
        net = b.and_tree([bit], name="alias")
        assert net == "alias"
        b.output(net)
        circuit = b.build()
        assert circuit.gate("alias").gate_type is GateType.BUF

    def test_empty_tree_rejected(self):
        b = CircuitBuilder("x")
        with pytest.raises(ValueError):
            b.xor_tree([])
        with pytest.raises(ValueError):
            b.xor_chain([])
        with pytest.raises(ValueError):
            b.and_tree([])


class TestComposites:
    def test_mux(self):
        b = CircuitBuilder("x")
        s, d0, d1 = b.inputs("s", "d0", "d1")
        b.output(b.mux(s, d0, d1, name="y"))
        circuit = b.build()
        for sel, v0, v1 in itertools.product([False, True], repeat=3):
            out = circuit.evaluate_outputs({"s": sel, "d0": v0, "d1": v1})
            assert out["y"] == (v1 if sel else v0)

    def test_full_adder_helper(self):
        b = CircuitBuilder("x")
        a, bb, ci = b.inputs("a", "b", "ci")
        total, carry = b.full_adder(a, bb, ci)
        b.outputs(total, carry)
        circuit = b.build()
        for va, vb, vc in itertools.product([False, True], repeat=3):
            out = circuit.evaluate_outputs({"a": va, "b": vb, "ci": vc})
            expected = int(va) + int(vb) + int(vc)
            assert out[total] == bool(expected & 1)
            assert out[carry] == (expected >= 2)
