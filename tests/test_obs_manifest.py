"""Run manifests, bench artifacts, and the structured-logging setup."""

from __future__ import annotations

import json
import logging

import pytest

from repro import obs
from repro.obs import bench, manifest
from repro.obs.logging import configure_logging, env_level, get_logger


# ----------------------------------------------------------------------
# RunManifest
# ----------------------------------------------------------------------
class _ScaleLike:
    name = "smoke"
    seed = 7
    circuits = ("c17", "c95")


def test_collect_duck_types_the_scale():
    m = obs.RunManifest.collect(scale=_ScaleLike(), workers=4, wall_seconds=1.5)
    assert m.schema == manifest.SCHEMA
    assert m.scale == "smoke"
    assert m.seed == 7
    assert m.workers == 4
    assert m.circuits == ("c17", "c95")
    assert m.wall_seconds == 1.5
    assert m.python and m.platform and m.pid > 0


def test_collect_seed_falls_back_to_env(monkeypatch):
    monkeypatch.setenv("REPRO_SEED", "11")
    m = obs.RunManifest.collect()
    assert m.seed == 11
    assert m.env["REPRO_SEED"] == "11"
    monkeypatch.setenv("REPRO_SEED", "junk")
    assert obs.RunManifest.collect().seed == 0


def test_manifest_records_observability_env(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_LOG", "debug")
    env = obs.RunManifest.collect().env
    assert env["REPRO_TRACE"] == "1"
    assert env["REPRO_LOG"] == "debug"


def test_manifest_write_roundtrip(tmp_path):
    m = obs.RunManifest.collect(scale=_ScaleLike(), command=("pytest",))
    path = m.write(tmp_path / "sub" / "manifest.json")
    loaded = json.loads(path.read_text())
    assert loaded["schema"] == manifest.SCHEMA
    assert loaded["scale"] == "smoke"
    assert loaded["command"] == ["pytest"]
    assert loaded == m.to_dict()


def test_git_sha_matches_head_in_this_checkout():
    sha = manifest.git_sha()
    if sha is None:
        pytest.skip("not running inside a git checkout")
    assert len(sha) == 40 and all(c in "0123456789abcdef" for c in sha)
    assert obs.RunManifest.collect().git_sha == sha


# ----------------------------------------------------------------------
# Bench artifacts
# ----------------------------------------------------------------------
def test_bench_artifact_roundtrip(tmp_path):
    from fractions import Fraction

    payload = {"wall_seconds": 1.25, "hit_rate": Fraction(3, 4)}
    path = obs.write_bench_artifact(tmp_path, "gc", payload)
    assert path == tmp_path / "BENCH_gc.json"
    doc = obs.read_bench_artifact(path)
    assert doc["name"] == "gc"
    assert doc["payload"] == {"wall_seconds": 1.25, "hit_rate": "3/4"}
    assert doc["manifest"]["schema"] == manifest.SCHEMA


def test_read_bench_artifact_rejects_malformed(tmp_path):
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps({"schema": "something-else"}))
    with pytest.raises(ValueError, match="unexpected schema"):
        obs.read_bench_artifact(bad)
    truncated = tmp_path / "BENCH_trunc.json"
    truncated.write_text(json.dumps({"schema": bench.SCHEMA, "name": "x"}))
    with pytest.raises(ValueError, match="missing"):
        obs.read_bench_artifact(truncated)


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------
def test_env_level_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_LOG", raising=False)
    assert env_level() == logging.INFO
    monkeypatch.setenv("REPRO_LOG", "debug")
    assert env_level() == logging.DEBUG
    monkeypatch.setenv("REPRO_LOG", "WARNING")
    assert env_level() == logging.WARNING
    monkeypatch.setenv("REPRO_LOG", "nonsense")
    assert env_level() == logging.INFO


def test_configure_logging_is_idempotent():
    root = configure_logging(level="info")
    handlers = list(root.handlers)
    assert configure_logging(level="info") is root
    assert root.handlers == handlers  # no handler duplication
    assert root.name == "repro"
    assert not root.propagate


def test_loggers_live_under_the_repro_hierarchy(capsys):
    configure_logging(level="debug")
    log = get_logger("experiments")
    assert log.name == "repro.experiments"
    assert get_logger("repro.experiments") is log
    log.debug("campaign %s started", "c17")
    err = capsys.readouterr().err
    assert "repro.experiments" in err and "campaign c17 started" in err
    configure_logging(level="warning")
    log.info("suppressed")
    assert "suppressed" not in capsys.readouterr().err


# ----------------------------------------------------------------------
# Engine & numpy provenance (the perf-trajectory comparability key)
# ----------------------------------------------------------------------
def test_manifest_records_numpy_version():
    m = obs.RunManifest.collect()
    recorded = manifest.numpy_version()
    assert m.numpy == recorded
    if recorded is not None:
        import numpy

        assert recorded == numpy.__version__
    assert "numpy" in m.to_dict()


def test_manifest_engine_explicit_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "dp")
    m = obs.RunManifest.collect(engine="bitparallel")
    assert m.engine == "bitparallel"


def test_manifest_engine_resolves_through_the_scale(monkeypatch):
    from repro.experiments.config import get_scale

    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    scale = get_scale("ci")
    m = obs.RunManifest.collect(scale=scale)
    assert m.engine == scale.effective_engine()
    monkeypatch.setenv("REPRO_ENGINE", "bitparallel")
    assert obs.RunManifest.collect(scale=scale).engine == "bitparallel"


def test_manifest_engine_falls_back_to_env(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "bitparallel")
    assert obs.RunManifest.collect().engine == "bitparallel"
    assert obs.RunManifest.collect().env["REPRO_ENGINE"] == "bitparallel"
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert obs.RunManifest.collect().engine is None


def test_manifest_progress_env_is_recorded(monkeypatch):
    monkeypatch.setenv("REPRO_PROGRESS", "1")
    assert obs.RunManifest.collect().env["REPRO_PROGRESS"] == "1"
