"""Tests for the span-trace profiler (hotspots + flamegraph export).

The profiler's contract: self time is cumulative time minus direct
children (never negative), names aggregate across tree depths, the
folded-stack export is the exact flamegraph.pl input format and
round-trips through the strict parser, and a real traced campaign
trace (the kind ``$REPRO_TRACE=1`` leaves behind, worker chunks
absorbed and all) folds without loss.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import profile as profile_mod


def _event(
    id: int,
    name: str,
    dur: float,
    parent: int | None = None,
    status: str = "ok",
) -> dict:
    return {
        "id": id,
        "parent": parent,
        "name": name,
        "pid": 1,
        "t0": 0.0,
        "t1": dur,
        "dur": dur,
        "status": status,
    }


# ----------------------------------------------------------------------
# aggregate: self / cumulative arithmetic
# ----------------------------------------------------------------------
def test_self_time_excludes_direct_children():
    events = [
        _event(0, "campaign.run", 1.0),
        _event(1, "campaign.chunk", 0.7, parent=0),
        _event(2, "dp.compute_test_set", 0.4, parent=1),
        _event(3, "bdd.gc", 0.1, parent=1),
    ]
    stats = profile_mod.aggregate(events)
    assert stats["campaign.run"].cum == pytest.approx(1.0)
    assert stats["campaign.run"].self_time == pytest.approx(0.3)
    assert stats["campaign.chunk"].self_time == pytest.approx(0.2)
    # Leaves keep their full duration as self time.
    assert stats["dp.compute_test_set"].self_time == pytest.approx(0.4)
    assert stats["bdd.gc"].self_time == pytest.approx(0.1)
    # Total self time equals the root's wall time: nothing double-counted.
    total = sum(s.self_time for s in stats.values())
    assert total == pytest.approx(1.0)


def test_same_name_at_different_depths_aggregates():
    events = [
        _event(0, "campaign.chunk", 1.0),
        _event(1, "analyze", 0.6, parent=0),
        _event(2, "analyze", 0.2, parent=0),
    ]
    stats = profile_mod.aggregate(events)
    analyze = stats["analyze"]
    assert analyze.calls == 2
    assert analyze.cum == pytest.approx(0.8)
    assert analyze.self_time == pytest.approx(0.8)
    assert analyze.mean == pytest.approx(0.4)
    assert stats["campaign.chunk"].self_time == pytest.approx(0.2)


def test_self_time_clamps_rounding_drift_at_zero():
    # Children sum to slightly more than the parent (timestamp rounding).
    events = [
        _event(0, "parent", 0.5),
        _event(1, "child", 0.5000001, parent=0),
    ]
    stats = profile_mod.aggregate(events)
    assert stats["parent"].self_time == 0.0


def test_missing_parent_does_not_steal_self_time():
    # The parent id is real but its event is outside this batch: the
    # orphan keeps its full duration (and folds as its own root below).
    events = [_event(5, "orphan", 0.3, parent=99)]
    stats = profile_mod.aggregate(events)
    assert stats["orphan"].self_time == pytest.approx(0.3)


def test_error_spans_are_counted():
    events = [
        _event(0, "analyze", 0.1),
        _event(1, "analyze", 0.1, status="error"),
    ]
    stats = profile_mod.aggregate(events)
    assert stats["analyze"].errors == 1
    assert stats["analyze"].calls == 2


def test_duration_percentiles_feed_the_hotspot_table():
    events = [_event(i, "analyze", 0.010 * (i + 1)) for i in range(100)]
    stats = profile_mod.aggregate(events)
    hist = stats["analyze"].durations
    assert hist.p50 == pytest.approx(0.50, abs=0.02)
    assert hist.p95 == pytest.approx(0.95, abs=0.02)
    assert hist.p99 == pytest.approx(0.99, abs=0.02)
    table = profile_mod.hotspot_table(stats)
    assert "p95 ms" in table[0]
    assert "analyze" in table[1]


def test_hotspot_table_rank_and_sort_modes():
    events = [
        _event(0, "outer", 1.0),
        _event(1, "inner", 0.9, parent=0),  # self 0.9, cum 0.9
    ]
    stats = profile_mod.aggregate(events)  # outer: self 0.1, cum 1.0
    by_self = profile_mod.hotspot_table(stats, sort="self")
    assert by_self[1].split()[0] == "inner"
    by_cum = profile_mod.hotspot_table(stats, sort="cum")
    assert by_cum[1].split()[0] == "outer"
    top1 = profile_mod.hotspot_table(stats, top=1)
    assert len(top1) == 2  # header + one row
    with pytest.raises(ValueError):
        profile_mod.hotspot_table(stats, sort="mean")


# ----------------------------------------------------------------------
# Folded stacks
# ----------------------------------------------------------------------
def test_fold_stacks_builds_root_to_leaf_paths():
    events = [
        _event(0, "campaign.run", 1.0),
        _event(1, "campaign.chunk", 0.7, parent=0),
        _event(2, "dp.compute_test_set", 0.4, parent=1),
    ]
    folded = profile_mod.fold_stacks(events)
    assert folded == {
        "campaign.run": 300_000,
        "campaign.run;campaign.chunk": 300_000,
        "campaign.run;campaign.chunk;dp.compute_test_set": 400_000,
    }
    # Total folded microseconds == total wall of the root.
    assert sum(folded.values()) == 1_000_000


def test_fold_stacks_roots_orphans_and_drops_zero_frames():
    events = [
        _event(0, "orphan", 0.001, parent=42),  # parent outside the batch
        _event(1, "empty", 0.0),  # rounds to zero µs → dropped
    ]
    folded = profile_mod.fold_stacks(events)
    assert folded == {"orphan": 1000}


def test_fold_stacks_merges_identical_paths():
    events = [
        _event(0, "run", 0.5),
        _event(1, "analyze", 0.2, parent=0),
        _event(2, "analyze", 0.1, parent=0),
    ]
    folded = profile_mod.fold_stacks(events)
    assert folded["run;analyze"] == 300_000


def test_folded_render_parse_roundtrip():
    folded = {"a;b;c": 123, "a;b": 7, "root": 999_999}
    text = profile_mod.render_folded(folded)
    assert profile_mod.parse_folded(text) == folded
    # Deterministic: path-sorted lines.
    assert text.splitlines() == sorted(text.splitlines())


@pytest.mark.parametrize(
    "bad", ["no-count-here", "stack -5", "stack 1.5", " 42", "stack 1 2 x"]
)
def test_parse_folded_rejects_malformed_lines(bad):
    with pytest.raises(ValueError):
        profile_mod.parse_folded(bad)


def test_profile_report_header_counts():
    events = [_event(0, "run", 1.0), _event(1, "run", 2.0)]
    lines = profile_mod.profile_report(events)
    assert lines[0].startswith("2 spans, 1 span names")


# ----------------------------------------------------------------------
# End to end: a real traced c432 campaign trace round-trips
# ----------------------------------------------------------------------
def test_c432_campaign_trace_flamegraph_roundtrip(tmp_path):
    """Acceptance: a ``$REPRO_TRACE=1`` c432 campaign trace folds and
    parses back losslessly in folded-stack format."""
    from repro.benchcircuits import get_circuit
    from repro.experiments import campaigns
    from repro.experiments.config import get_scale
    from repro.faults.stuck_at import collapsed_checkpoint_faults

    circuit = get_circuit("c432")
    faults = collapsed_checkpoint_faults(circuit)[:40]
    scale = get_scale("ci")

    prev = obs.get_tracer()
    tracer = obs.Tracer()
    obs.set_tracer(tracer)
    try:
        campaigns.clear_campaign_caches()
        campaigns._run(circuit, "c432", scale, faults, bridging=False)
    finally:
        obs.set_tracer(prev)
        campaigns.clear_campaign_caches()

    trace_path = tmp_path / "trace_c432.jsonl"
    assert tracer.export_jsonl(trace_path) > len(faults)
    events = profile_mod.load_trace(trace_path)

    stats = profile_mod.aggregate(events)
    assert stats["dp.compute_test_set"].calls == len(faults)
    assert "campaign.chunk" in stats

    flame_path = profile_mod.write_folded(events, tmp_path / "c432.folded")
    folded = profile_mod.parse_folded(
        flame_path.read_text(encoding="utf-8")
    )
    assert folded == profile_mod.fold_stacks(events)
    # The campaign stack appears as a root→leaf path, and the folded
    # total equals the trace's total self time (to µs rounding).
    assert any(
        path.endswith("dp.compute_test_set") and "campaign.chunk" in path
        for path in folded
    )
    total_self_us = 1e6 * sum(s.self_time for s in stats.values())
    assert sum(folded.values()) == pytest.approx(total_self_us, abs=len(events))
