"""Property and unit tests for the span tracer.

The tracer's contract: spans nest LIFO (exception paths included),
every opened ``with`` span closes exactly once, parent links
reconstruct the nesting tree, the disabled path allocates nothing, and
captured event lists survive a process boundary and merge
deterministically via :meth:`Tracer.absorb`.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from concurrent.futures import ProcessPoolExecutor
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import obs
from repro.obs import trace as trace_mod
from repro.obs.encode import json_safe


@pytest.fixture
def active_tracer():
    """A fresh enabled tracer installed as the active one, restored after."""
    prev = obs.get_tracer()
    tracer = obs.Tracer()
    obs.set_tracer(tracer)
    yield tracer
    obs.set_tracer(prev)


# ----------------------------------------------------------------------
# Nesting properties
# ----------------------------------------------------------------------
span_names = st.sampled_from(("load", "apply", "gc", "analyze"))

span_trees = st.recursive(
    st.tuples(span_names, st.just(())),
    lambda children: st.tuples(span_names, st.lists(children, max_size=3)),
    max_leaves=12,
)


def _run_tree(tracer: obs.Tracer, tree) -> None:
    name, children = tree
    with tracer.span(name):
        for child in children:
            _run_tree(tracer, child)


def _rebuild(events):
    """Reconstruct (name, children) trees from parent links."""
    by_parent: dict[int | None, list[dict]] = {}
    for event in events:
        by_parent.setdefault(event["parent"], []).append(event)
    for siblings in by_parent.values():
        siblings.sort(key=lambda e: (e["t0"], e["id"]))

    def build(event):
        return (
            event["name"],
            tuple(build(c) for c in by_parent.get(event["id"], ())),
        )

    return [build(root) for root in by_parent.get(None, ())]


def _as_tuple_tree(tree):
    name, children = tree
    return (name, tuple(_as_tuple_tree(c) for c in children))


@given(st.lists(span_trees, min_size=1, max_size=4))
def test_parent_links_reconstruct_the_nesting(forest):
    tracer = obs.Tracer()
    for tree in forest:
        _run_tree(tracer, tree)
    events = tracer.events
    # Every opened span closed exactly once, with a unique id.
    assert len({e["id"] for e in events}) == len(events)
    assert all(e["status"] == "ok" for e in events)
    assert all(e["t1"] >= e["t0"] and e["dur"] >= 0 for e in events)
    assert _rebuild(events) == [_as_tuple_tree(t) for t in forest]


@given(st.lists(span_trees, min_size=1, max_size=3))
def test_children_close_within_their_parents_interval(forest):
    tracer = obs.Tracer()
    for tree in forest:
        _run_tree(tracer, tree)
    by_id = {e["id"]: e for e in tracer.events}
    for event in tracer.events:
        if event["parent"] is not None:
            parent = by_id[event["parent"]]
            assert parent["t0"] <= event["t0"]
            assert event["t1"] <= parent["t1"]


@given(st.integers(min_value=0, max_value=5))
def test_exception_closes_the_whole_stack(depth):
    tracer = obs.Tracer()

    def nest(level: int):
        with tracer.span(f"level{level}"):
            if level == depth:
                raise RuntimeError("boom")
            nest(level + 1)

    with pytest.raises(RuntimeError):
        nest(0)
    assert len(tracer.events) == depth + 1
    assert tracer.current_location() is None  # stack fully unwound
    # Every level is recorded as an error, innermost closed first.
    assert [e["name"] for e in tracer.events] == [
        f"level{i}" for i in range(depth, -1, -1)
    ]
    assert all(
        e["status"] == "error" and e["exc"] == "RuntimeError"
        for e in tracer.events
    )


def test_leaked_child_is_flagged_and_stack_repaired():
    tracer = obs.Tracer()
    with tracer.span("outer"):
        tracer.span("leaked-inner")  # opened without `with`, never closed
    (inner, outer) = tracer.events
    assert inner["name"] == "leaked-inner" and inner["status"] == "leaked"
    assert outer["name"] == "outer" and outer["status"] == "ok"
    assert inner["parent"] == outer["id"]
    assert tracer.current_location() is None


def test_double_close_records_once():
    tracer = obs.Tracer()
    span = tracer.span("once")
    span.__exit__(None, None, None)
    span.__exit__(None, None, None)
    assert len(tracer.events) == 1


def test_current_location_breadcrumb(active_tracer):
    assert obs.current_location() is None
    with obs.span("campaign.run"):
        with obs.span("campaign.chunk"):
            assert obs.current_location() == "campaign.run/campaign.chunk"
        assert obs.current_location() == "campaign.run"
    assert obs.current_location() is None


# ----------------------------------------------------------------------
# Disabled path: no allocation, no events
# ----------------------------------------------------------------------
def test_disabled_tracer_allocates_no_spans():
    prev = obs.get_tracer()
    obs.disable_tracing()
    try:
        assert not obs.tracing_enabled()
        first = obs.span("dp.compute_test_set", fault="f")
        second = obs.span("bdd.gc")
        assert first is obs.NOOP_SPAN and second is obs.NOOP_SPAN
        with first as sp:
            assert sp.set(anything=1) is sp  # chainable no-op
        assert obs.get_tracer().events == ()
        assert obs.current_location() is None
    finally:
        obs.set_tracer(prev)


def test_enable_disable_roundtrip():
    prev = obs.get_tracer()
    try:
        tracer = obs.enable_tracing()
        assert obs.tracing_enabled()
        assert obs.enable_tracing() is tracer  # idempotent
        with obs.span("x"):
            pass
        assert [e["name"] for e in tracer.events] == ["x"]
        obs.disable_tracing()
        assert not obs.tracing_enabled()
        assert obs.span("y") is obs.NOOP_SPAN
    finally:
        obs.set_tracer(prev)


@pytest.mark.parametrize(
    ("value", "expect"),
    [("", False), ("0", False), ("off", False), ("1", True), ("true", True)],
)
def test_env_enabled_parsing(value, expect):
    assert trace_mod.env_enabled({"REPRO_TRACE": value}) is expect
    assert trace_mod.env_enabled({}) is False


# ----------------------------------------------------------------------
# capture / absorb across process boundaries
# ----------------------------------------------------------------------
def test_capture_fences_and_restores(active_tracer):
    with obs.span("driver"):
        with obs.capture() as cap:
            with obs.span("chunk"):
                pass
        assert [e["name"] for e in cap.events] == ["chunk"]
    # The fenced span never leaked into the surrounding tracer...
    assert [e["name"] for e in active_tracer.events] == ["driver"]
    # ...and the surrounding tracer was restored as active.
    assert obs.get_tracer() is active_tracer


def test_capture_is_inert_when_disabled():
    prev = obs.get_tracer()
    obs.disable_tracing()
    try:
        with obs.capture() as cap:
            with obs.span("invisible"):
                pass
        assert cap.events == []
    finally:
        obs.set_tracer(prev)


def test_absorb_remaps_ids_and_reparents(active_tracer):
    worker = obs.Tracer()
    with worker.span("chunk"):
        with worker.span("analyze"):
            pass
    payload = worker.drain()
    with obs.span("campaign.run") as root:
        absorbed = active_tracer.absorb(payload)
    assert absorbed == 2
    by_name = {e["name"]: e for e in active_tracer.events}
    assert by_name["chunk"]["parent"] == root.id
    assert by_name["analyze"]["parent"] == by_name["chunk"]["id"]
    ids = [e["id"] for e in active_tracer.events]
    assert len(set(ids)) == len(ids)


def test_absorb_in_index_order_is_deterministic():
    def merged(order):
        driver = obs.Tracer()
        payloads = {}
        for index in (0, 1, 2):
            worker = obs.Tracer()
            with worker.span("chunk", {"index": index}):
                pass
            payloads[index] = worker.drain()
        with driver.span("campaign.run"):
            for index in order:  # completion order varies...
                pass
            for index in sorted(payloads):  # ...absorb order must not
                driver.absorb(payloads[index])
        return [
            (e["name"], e.get("attrs", {}).get("index")) for e in driver.events
        ]

    assert merged((2, 0, 1)) == merged((0, 1, 2))


def _traced_pool_work(index: int):
    """Top-level so ProcessPoolExecutor can pickle it."""
    obs.enable_tracing()
    with obs.capture() as cap:
        with obs.span("campaign.chunk", index=index):
            with obs.span("dp.compute_test_set", fault=f"n{index}/sa1"):
                pass
    return index, cap.events


def test_spans_survive_process_pool_boundary(active_tracer):
    with ProcessPoolExecutor(max_workers=2) as pool:
        payloads = dict(pool.map(_traced_pool_work, range(3)))
    with obs.span("campaign.run") as root:
        for index in sorted(payloads):
            active_tracer.absorb(payloads[index])
    chunk_events = [
        e for e in active_tracer.events if e["name"] == "campaign.chunk"
    ]
    assert [e["attrs"]["index"] for e in chunk_events] == [0, 1, 2]
    assert all(e["parent"] == root.id for e in chunk_events)
    assert any(e["pid"] != os.getpid() for e in active_tracer.events)


# ----------------------------------------------------------------------
# Export & rendering
# ----------------------------------------------------------------------
def test_export_jsonl_roundtrip(tmp_path, active_tracer):
    with obs.span("campaign.run", circuit="c17"):
        with obs.span("dp.compute_test_set", fault="G1/sa0"):
            pass
    path = tmp_path / "trace.jsonl"
    assert active_tracer.export_jsonl(path) == 2
    parsed = [json.loads(line) for line in path.read_text().splitlines()]
    assert parsed == active_tracer.events


def test_render_tree_indents_children():
    tracer = obs.Tracer()
    with tracer.span("campaign.run", {"circuit": "c17"}):
        with tracer.span("campaign.chunk", {"index": 0}):
            pass
        with tracer.span("campaign.chunk", {"index": 1}):
            pass
    lines = render = obs.render_tree(tracer.events)
    assert len(lines) == 3
    assert render[0].startswith("campaign.run")
    assert render[1].startswith("  campaign.chunk") and "index=0" in render[1]
    assert render[2].startswith("  campaign.chunk") and "index=1" in render[2]


def test_render_tree_keeps_orphans_visible():
    tracer = obs.Tracer()
    with tracer.span("parent"):
        with tracer.span("child"):
            pass
    # Drop the parent record: the child must still render (as a root).
    orphans = [e for e in tracer.events if e["name"] == "child"]
    assert obs.render_tree(orphans)[0].startswith("child")


# ----------------------------------------------------------------------
# json_safe attribute encoding
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _FakeFault:
    net: str
    value: bool


def test_json_safe_handles_domain_values():
    encoded = json_safe(
        {
            "detectability": Fraction(3, 16),
            "fault": _FakeFault("G17", True),
            "pos": frozenset({"b", "a"}),
            "nan": math.nan,
        }
    )
    assert encoded["detectability"] == "3/16"
    assert encoded["fault"] == {"net": "G17", "value": True}
    assert encoded["pos"] == ["a", "b"]
    assert encoded["nan"] == "nan"
    json.dumps(encoded)  # must be serializable as-is


def test_json_safe_bounds_recursion_depth():
    nested: object = "leaf"
    for _ in range(40):
        nested = [nested]
    json.dumps(json_safe(nested))  # deep nesting degrades to str, not crash


def test_absorb_empty_payload_is_a_noop(active_tracer):
    """A chunk that traced nothing (or a pre-obs worker) merges cleanly."""
    with obs.span("campaign.run"):
        assert active_tracer.absorb([]) == 0
        assert active_tracer.absorb(()) == 0
    assert [e["name"] for e in active_tracer.events] == ["campaign.run"]
    # Id allocation was untouched: the next span gets the next id.
    before = active_tracer.events[-1]["id"]
    with obs.span("next"):
        pass
    assert active_tracer.events[-1]["id"] == before + 1


def test_absorb_failed_chunk_preserves_error_status(active_tracer):
    worker = obs.Tracer()
    with pytest.raises(RuntimeError):
        with worker.span("campaign.chunk", {"index": 0}):
            with worker.span("dp.compute_test_set"):
                raise RuntimeError("fault analysis blew up")
    payload = worker.drain()
    with obs.span("campaign.run") as root:
        assert active_tracer.absorb(payload) == 2
    by_name = {e["name"]: e for e in active_tracer.events}
    chunk = by_name["campaign.chunk"]
    assert chunk["status"] == "error" and chunk["exc"] == "RuntimeError"
    assert chunk["parent"] == root.id
    inner = by_name["dp.compute_test_set"]
    assert inner["status"] == "error"
    assert inner["parent"] == chunk["id"]


def test_absorb_mixed_empty_and_failed_chunks_stays_deterministic(
    active_tracer,
):
    """The parallel merge absorbs per-chunk payloads in shard-index
    order; empty and failed chunks must not perturb ids or parents."""
    payloads = {}
    for index in range(3):
        worker = obs.Tracer()
        if index == 1:
            payloads[index] = worker.drain()  # traced nothing
            continue
        try:
            with worker.span("campaign.chunk", {"index": index}):
                if index == 2:
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        payloads[index] = worker.drain()
    with obs.span("campaign.run") as root:
        absorbed = [
            active_tracer.absorb(payloads[i]) for i in sorted(payloads)
        ]
    assert absorbed == [1, 0, 1]
    chunks = [
        e for e in active_tracer.events if e["name"] == "campaign.chunk"
    ]
    assert [c["attrs"]["index"] for c in chunks] == [0, 2]
    assert [c["status"] for c in chunks] == ["ok", "error"]
    assert all(c["parent"] == root.id for c in chunks)
    ids = [e["id"] for e in active_tracer.events]
    assert len(set(ids)) == len(ids)
