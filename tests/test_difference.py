"""Tests for the Table 1 difference identities."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.manager import BDDManager, FALSE
from repro.circuit.gates import GateType
from repro.core.difference import (
    TABLE1,
    and_difference,
    gate_output_difference,
    or_difference,
    xor_difference,
)

_NAMES = ["fa", "fb", "da", "db"]


def _setup():
    m = BDDManager(_NAMES)
    return m, m.var("fa"), m.var("fb"), m.var("da"), m.var("db")


class TestTwoInputIdentities:
    """Each identity versus its defining expansion F_C = g(f⊕Δ)."""

    def test_and(self):
        m, fa, fb, da, db = _setup()
        faulty = m.apply_and(m.apply_xor(fa, da), m.apply_xor(fb, db))
        expected = m.apply_xor(m.apply_and(fa, fb), faulty)
        assert and_difference(m, fa, fb, da, db) == expected

    def test_or(self):
        m, fa, fb, da, db = _setup()
        faulty = m.apply_or(m.apply_xor(fa, da), m.apply_xor(fb, db))
        expected = m.apply_xor(m.apply_or(fa, fb), faulty)
        assert or_difference(m, fa, fb, da, db) == expected

    def test_xor(self):
        m, fa, fb, da, db = _setup()
        faulty = m.apply_xor(m.apply_xor(fa, da), m.apply_xor(fb, db))
        expected = m.apply_xor(m.apply_xor(fa, fb), faulty)
        assert xor_difference(m, da, db) == expected

    def test_inversion_leaves_difference_unchanged(self):
        m, fa, fb, da, db = _setup()
        for gate, base in (
            (GateType.NAND, GateType.AND),
            (GateType.NOR, GateType.OR),
            (GateType.XNOR, GateType.XOR),
        ):
            assert gate_output_difference(
                m, gate, [fa, fb], [da, db]
            ) == gate_output_difference(m, base, [fa, fb], [da, db])

    def test_zero_deltas_shortcut(self):
        m, fa, fb, _, _ = _setup()
        assert and_difference(m, fa, fb, FALSE, FALSE) == FALSE
        assert or_difference(m, fa, fb, FALSE, FALSE) == FALSE

    def test_unary_gates_pass_delta_through(self):
        m, fa, _, da, _ = _setup()
        assert gate_output_difference(m, GateType.BUF, [fa], [da]) == da
        assert gate_output_difference(m, GateType.NOT, [fa], [da]) == da

    def test_constant_gates_have_no_difference(self):
        m, *_ = _setup()
        assert gate_output_difference(m, GateType.CONST0, [], []) == FALSE
        assert gate_output_difference(m, GateType.CONST1, [], []) == FALSE

    def test_misaligned_inputs_rejected(self):
        m, fa, fb, da, _ = _setup()
        with pytest.raises(ValueError):
            gate_output_difference(m, GateType.AND, [fa, fb], [da])


class TestNInputChaining:
    """The n-input fold must equal the defining expansion, exhaustively."""

    @pytest.mark.parametrize(
        "gate_type",
        [
            GateType.AND,
            GateType.NAND,
            GateType.OR,
            GateType.NOR,
            GateType.XOR,
            GateType.XNOR,
        ],
    )
    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_exhaustive_constant_functions(self, gate_type, arity):
        """Evaluate with all constant good/delta combinations.

        Constants cover every pointwise case, and the identities are
        pointwise — so this is a complete check of the algebra.
        """
        m = BDDManager(["x"])  # variables unused; constants suffice
        from repro.circuit.gates import eval_gate

        for goods in itertools.product([False, True], repeat=arity):
            for deltas in itertools.product([False, True], repeat=arity):
                good_nodes = [int(v) for v in goods]
                delta_nodes = [int(v) for v in deltas]
                result = gate_output_difference(
                    m, gate_type, good_nodes, delta_nodes
                )
                faulty_inputs = [g ^ d for g, d in zip(goods, deltas)]
                expected = eval_gate(gate_type, list(goods)) ^ eval_gate(
                    gate_type, faulty_inputs
                )
                assert result == int(expected)


class TestTable1Rendering:
    def test_table_lists_all_gate_families(self):
        families = {row[0] for row in TABLE1}
        assert families == {
            "AND / NAND",
            "OR / NOR",
            "XOR / XNOR",
            "INVERTER / BUFFER",
        }


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(
        [
            GateType.AND,
            GateType.NAND,
            GateType.OR,
            GateType.NOR,
            GateType.XOR,
            GateType.XNOR,
        ]
    ),
    st.integers(2, 4),
    st.randoms(use_true_random=False),
)
def test_identities_on_random_functions(gate_type, arity, rng):
    """Table 1 versus the defining expansion on random OBDDs."""
    m = BDDManager([f"v{i}" for i in range(5)])

    def random_node():
        node = m.var(f"v{rng.randrange(5)}")
        for _ in range(rng.randrange(4)):
            op = rng.choice([m.apply_and, m.apply_or, m.apply_xor])
            node = op(node, m.var(f"v{rng.randrange(5)}"))
        return node

    goods = [random_node() for _ in range(arity)]
    deltas = [random_node() if rng.random() > 0.25 else FALSE for _ in range(arity)]
    via_table = gate_output_difference(m, gate_type, goods, deltas)
    faulty = [m.apply_xor(f, d) for f, d in zip(goods, deltas)]

    def direct(operands):
        base_op = {
            GateType.AND: m.apply_and,
            GateType.OR: m.apply_or,
            GateType.XOR: m.apply_xor,
        }[gate_type.base]
        acc = operands[0]
        for operand in operands[1:]:
            acc = base_op(acc, operand)
        return m.apply_not(acc) if gate_type.is_inverting else acc

    assert via_table == m.apply_xor(direct(goods), direct(faulty))
