"""Round-trip tests for the benchmark-suite exporter."""

from __future__ import annotations

import random

from repro.benchcircuits.export import export_suite, main
from repro.benchcircuits.registry import CIRCUIT_NAMES, get_circuit
from repro.circuit.iscas import parse_bench_file


def test_export_writes_all_circuits(tmp_path):
    paths = export_suite(tmp_path)
    assert len(paths) == len(CIRCUIT_NAMES)
    assert {p.stem for p in paths} == set(CIRCUIT_NAMES)
    for path in paths:
        assert "provenance:" in path.read_text()


def test_roundtrip_preserves_structure_and_function(tmp_path):
    paths = export_suite(tmp_path)
    rng = random.Random(0)
    for path in paths:
        original = get_circuit(path.stem)
        parsed = parse_bench_file(path)
        assert parsed.inputs == original.inputs
        assert parsed.outputs == original.outputs
        assert parsed.num_gates == original.num_gates
        for _ in range(20):
            assignment = {
                net: bool(rng.getrandbits(1)) for net in original.inputs
            }
            assert parsed.evaluate_outputs(assignment) == (
                original.evaluate_outputs(assignment)
            )


def test_cli(tmp_path, capsys):
    assert main([str(tmp_path / "suite")]) == 0
    out = capsys.readouterr().out
    assert "c17.bench" in out
    assert main([]) == 2
