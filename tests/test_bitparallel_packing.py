"""Property suite for the bit-parallel packing layer and fault batching.

Three families of invariants, all hypothesis-driven where the input
space allows it:

* **pack/unpack round-trip** — ``pack_word``/``unpack_word`` are exact
  inverses over the masked vector range, and the packed PI planes are
  bit-identical to the scalar exhaustive simulator's big-int words;
* **batch-split invariance** — the kernel's answer is independent of
  how the fault axis is partitioned: any ``batch_size`` and any
  split of the fault list into separate ``simulate`` calls produce
  the same outcomes as one monolithic batch;
* **word boundaries** — fault batches of exactly 1, 63, 64 and 65
  lanes (straddling the 64-bit word width the planes are packed
  into) reproduce the scalar truth-table detection words bit-exactly.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, strategies as st  # noqa: E402

from repro.benchcircuits import get_circuit  # noqa: E402
from repro.faults.stuck_at import collapsed_checkpoint_faults  # noqa: E402
from repro.simulation import packing  # noqa: E402
from repro.simulation.bitparallel import BitParallelSimulator  # noqa: E402
from repro.simulation.truthtable import TruthTableSimulator  # noqa: E402


# ----------------------------------------------------------------------
# pack / unpack round-trip
# ----------------------------------------------------------------------
@given(
    num_vectors=st.integers(min_value=1, max_value=520),
    data=st.data(),
)
def test_pack_unpack_round_trip(num_vectors, data):
    word = data.draw(
        st.integers(min_value=0, max_value=(1 << num_vectors) - 1)
    )
    packed = packing.pack_word(word, num_vectors)
    assert packed.shape == (packing.num_words(num_vectors),)
    assert packed.dtype == np.uint64
    assert packing.unpack_word(packed, num_vectors) == word


@given(
    num_vectors=st.integers(min_value=1, max_value=200),
    data=st.data(),
)
def test_pack_discards_bits_past_num_vectors(num_vectors, data):
    word = data.draw(
        st.integers(min_value=0, max_value=(1 << num_vectors) - 1)
    )
    junk = data.draw(st.integers(min_value=1, max_value=1 << 70))
    padded = packing.pack_word(word | (junk << num_vectors), num_vectors)
    assert np.array_equal(padded, packing.pack_word(word, num_vectors))


@given(num_vectors=st.integers(min_value=1, max_value=520))
def test_word_mask_covers_exactly_the_vector_range(num_vectors):
    mask = packing.word_mask(num_vectors)
    assert packing.unpack_word(mask, num_vectors) == (1 << num_vectors) - 1
    # no bit above num_vectors survives the mask
    total = sum(int(w).bit_count() for w in mask)
    assert total == num_vectors


@given(num_inputs=st.integers(min_value=1, max_value=10))
def test_exhaustive_input_words_match_scalar_layout(num_inputs):
    """PI planes agree with the scalar simulator's vector numbering."""
    inputs = [f"i{k}" for k in range(num_inputs)]
    num_vectors = 1 << num_inputs
    planes = packing.exhaustive_input_words(inputs)
    for i, net in enumerate(inputs):
        expected = sum(
            1 << v for v in range(num_vectors) if (v >> i) & 1
        )
        assert packing.unpack_word(planes[net], num_vectors) == expected


@given(
    num_vectors=st.integers(min_value=1, max_value=300),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_random_input_words_deterministic_and_masked(num_vectors, seed):
    inputs = ["a", "b", "c"]
    first = packing.random_input_words(inputs, num_vectors, seed)
    again = packing.random_input_words(inputs, num_vectors, seed)
    mask = packing.word_mask(num_vectors)
    for net in inputs:
        assert np.array_equal(first[net], again[net])
        assert np.array_equal(first[net] & mask, first[net])


@given(words=st.lists(st.integers(min_value=0, max_value=2**64 - 1)))
def test_popcount_words_counts_bits(words):
    arr = np.array(words, dtype=np.uint64)
    counts = packing.popcount_words(arr)
    assert [int(c) for c in counts] == [w.bit_count() for w in words]


# ----------------------------------------------------------------------
# iter_batches
# ----------------------------------------------------------------------
@given(
    n_items=st.integers(min_value=0, max_value=200),
    batch_size=st.integers(min_value=1, max_value=70),
)
def test_iter_batches_covers_items_exactly_once(n_items, batch_size):
    items = list(range(n_items))
    rebuilt: list[int] = []
    for start, batch in packing.iter_batches(items, batch_size):
        assert start == len(rebuilt)
        assert 1 <= len(batch) <= batch_size
        rebuilt.extend(batch)
    assert rebuilt == items


def test_iter_batches_rejects_nonpositive_batch_size():
    with pytest.raises(ValueError):
        list(packing.iter_batches([1, 2, 3], 0))


# ----------------------------------------------------------------------
# batch-split invariance on the kernel
# ----------------------------------------------------------------------
_CIRCUIT = get_circuit("c17")
_FAULTS = collapsed_checkpoint_faults(_CIRCUIT)
_REFERENCE = BitParallelSimulator(_CIRCUIT).simulate(_FAULTS)


def _outcome_key(outcome):
    return (outcome.fault, outcome.detection_count, outcome.observable_pos)


@given(batch_size=st.integers(min_value=1, max_value=24))
def test_any_batch_size_matches_monolithic_run(batch_size):
    sim = BitParallelSimulator(_CIRCUIT, batch_size=batch_size)
    outcomes = sim.simulate(_FAULTS)
    assert list(map(_outcome_key, outcomes)) == list(
        map(_outcome_key, _REFERENCE)
    )


@given(
    cuts=st.lists(
        st.integers(min_value=0, max_value=len(_FAULTS)),
        max_size=5,
    )
)
def test_any_call_partition_matches_monolithic_run(cuts):
    """Splitting the fault list across simulate() calls changes nothing."""
    bounds = sorted({0, len(_FAULTS), *cuts})
    sim = BitParallelSimulator(_CIRCUIT)
    outcomes = []
    for lo, hi in zip(bounds, bounds[1:]):
        outcomes.extend(sim.simulate(_FAULTS[lo:hi]))
    assert list(map(_outcome_key, outcomes)) == list(
        map(_outcome_key, _REFERENCE)
    )


# ----------------------------------------------------------------------
# word-boundary fault counts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("count", [1, 63, 64, 65])
def test_word_boundary_fault_counts_match_scalar(count):
    """Batches straddling the 64-lane word width stay bit-exact."""
    circuit = get_circuit("c95")
    faults = collapsed_checkpoint_faults(circuit)[:count]
    assert len(faults) == count
    sim = BitParallelSimulator(circuit)
    tts = TruthTableSimulator(circuit)
    # drive the whole list through one explicit N-lane batch so lanes
    # 0, 62..64 exercise the word-width edges of the plane layout
    outcomes, words = sim._simulate_batch(faults, want_words=True)
    assert len(outcomes) == count
    for fault, outcome, got in zip(faults, outcomes, words):
        expected = tts.detection_word(fault)
        assert outcome.fault == fault
        assert got == expected, str(fault)
        assert outcome.detection_count == bin(expected).count("1")
        assert outcome.observable_pos == tts.observable_pos(fault)
