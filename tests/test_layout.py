"""Unit tests for the pseudo-layout estimator (paper §2.2)."""

from __future__ import annotations

import math

from repro.circuit.builder import CircuitBuilder
from repro.circuit.layout import estimate_coordinates, wire_distance


def _sample():
    b = CircuitBuilder("layout")
    a, bb, c = b.inputs("a", "b", "c")
    g1 = b.and_(a, bb, name="g1")
    g2 = b.or_(g1, c, name="g2")
    b.output(g2)
    return b.build()


class TestCoordinates:
    def test_pi_coordinates_follow_declared_order(self):
        coords = estimate_coordinates(_sample())
        assert coords["a"] == (0.0, 0.0)
        assert coords["b"] == (0.0, 1.0)
        assert coords["c"] == (0.0, 2.0)

    def test_x_is_level(self):
        coords = estimate_coordinates(_sample())
        assert coords["g1"][0] == 1.0
        assert coords["g2"][0] == 2.0

    def test_y_is_mean_of_fanins(self):
        coords = estimate_coordinates(_sample())
        assert coords["g1"][1] == 0.5  # mean of a (0) and b (1)
        assert coords["g2"][1] == (0.5 + 2.0) / 2  # mean of g1 and c

    def test_constant_gates_get_default_y(self):
        b = CircuitBuilder("const")
        b.input("a")
        one = b.const1(name="one")
        b.output(b.and_("a", one, name="y"))
        coords = estimate_coordinates(b.build())
        assert coords["one"] == (0.0, 0.0)  # single PI: default y = 0

    def test_every_net_has_coordinates(self, alu181):
        coords = estimate_coordinates(alu181)
        assert set(coords) == set(alu181.nets)


class TestDistances:
    def test_euclidean(self):
        coords = estimate_coordinates(_sample())
        expected = math.hypot(
            coords["g1"][0] - coords["c"][0], coords["g1"][1] - coords["c"][1]
        )
        assert wire_distance(coords, "g1", "c") == expected

    def test_symmetry_and_zero(self):
        coords = estimate_coordinates(_sample())
        assert wire_distance(coords, "a", "g2") == wire_distance(coords, "g2", "a")
        assert wire_distance(coords, "a", "a") == 0.0

    def test_adjacent_pis_are_closest(self):
        coords = estimate_coordinates(_sample())
        assert wire_distance(coords, "a", "b") < wire_distance(coords, "a", "c")
