"""The symbolic fault simulator must agree with Difference Propagation."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.engine import DifferencePropagation
from repro.core.faulty_sim import SymbolicFaultSimulator
from repro.core.symbolic import CircuitFunctions
from repro.faults.bridging import BridgeKind, enumerate_nfbfs
from repro.faults.lines import Line
from repro.faults.stuck_at import StuckAtFault, all_stuck_at_faults

from tests.strategies import circuits


class TestAgreementWithDifferencePropagation:
    def test_stuck_at_on_c17(self, c17):
        functions = CircuitFunctions(c17)
        dp = DifferencePropagation(c17, functions=functions)
        sim = SymbolicFaultSimulator(c17, functions=functions)
        for fault in all_stuck_at_faults(c17):
            a = dp.analyze(fault)
            b = sim.analyze(fault)
            assert a.tests == b.tests
            assert a.observable_pos == b.observable_pos

    def test_bridges_on_c17(self, c17):
        functions = CircuitFunctions(c17)
        dp = DifferencePropagation(c17, functions=functions)
        sim = SymbolicFaultSimulator(c17, functions=functions)
        for kind in BridgeKind:
            for fault in enumerate_nfbfs(c17, kind):
                assert dp.analyze(fault).tests == sim.analyze(fault).tests

    def test_branch_faults_on_c95(self, c95):
        functions = CircuitFunctions(c95)
        dp = DifferencePropagation(c95, functions=functions)
        sim = SymbolicFaultSimulator(c95, functions=functions)
        branch_faults = [
            f for f in all_stuck_at_faults(c95) if f.line.is_branch
        ]
        for fault in branch_faults[::9]:
            assert dp.analyze(fault).tests == sim.analyze(fault).tests

    def test_unsupported_fault(self, c17):
        import pytest

        sim = SymbolicFaultSimulator(c17)
        with pytest.raises(TypeError):
            sim.analyze(42)  # type: ignore[arg-type]


@settings(max_examples=15, deadline=None)
@given(circuits(max_inputs=4, max_gates=10))
def test_two_engines_agree_on_random_circuits(circuit):
    """Propagating Δf or propagating F must land on the same test sets."""
    functions = CircuitFunctions(circuit)
    dp = DifferencePropagation(circuit, functions=functions)
    sim = SymbolicFaultSimulator(circuit, functions=functions)
    for fault in all_stuck_at_faults(circuit)[::4]:
        assert dp.analyze(fault).tests == sim.analyze(fault).tests
