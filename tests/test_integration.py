"""Cross-tool integration properties: the whole pipeline on one circuit.

Each test chains several subsystems the way a user would and checks
the invariants that must hold *between* tools — the kind of bug unit
tests cannot see.
"""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings

from repro.analysis.observability import pos_fed_by_fault
from repro.atpg import Podem, PodemStatus
from repro.core.coverage import compact_test_set, coverage
from repro.core.engine import DifferencePropagation
from repro.core.metrics import adherence, detectability_upper_bound
from repro.core.redundancy import classify_redundancies
from repro.core.symbolic import CircuitFunctions
from repro.faults.stuck_at import collapsed_checkpoint_faults
from repro.simulation.deductive import DeductiveFaultSimulator
from repro.simulation.single import detects
from repro.simulation.truthtable import TruthTableSimulator

from tests.strategies import circuits


@settings(max_examples=12, deadline=None)
@given(circuits(max_inputs=4, max_gates=12))
def test_full_stuck_at_pipeline_invariants(circuit):
    """DP, PODEM, deductive sim, bounds and redundancy must all agree."""
    functions = CircuitFunctions(circuit)
    engine = DifferencePropagation(circuit, functions=functions)
    podem = Podem(circuit)
    faults = collapsed_checkpoint_faults(circuit)
    deductive = DeductiveFaultSimulator(circuit, faults)
    oracle = TruthTableSimulator(circuit)

    analyses = {f: engine.analyze(f) for f in faults}
    redundant = {r.fault for r in classify_redundancies(engine, faults)}

    for fault, analysis in analyses.items():
        # Exactness against brute force.
        assert analysis.detectability == oracle.detectability(fault)
        # Bound and adherence invariants.
        bound = detectability_upper_bound(functions, fault)
        assert analysis.detectability <= bound
        a = adherence(analysis.detectability, bound)
        assert a is None or 0 <= a <= 1
        # Observability never exceeds structural reach.
        assert analysis.observable_pos <= pos_fed_by_fault(circuit, fault)
        # Redundancy classification is exactly the zero-test-set faults.
        assert (fault in redundant) == (not analysis.is_detectable)
        # PODEM agrees on detectability and lands inside the test set.
        result = podem.generate(fault)
        assert result.status is not PodemStatus.ABORTED
        assert result.found == analysis.is_detectable
        if result.found:
            assert analysis.tests.evaluate(result.test)
            # Both fault simulators agree this vector detects the fault.
            assert detects(circuit, result.test, fault)
            assert fault in deductive.detected(result.test)


@settings(max_examples=10, deadline=None)
@given(circuits(max_inputs=4, max_gates=10))
def test_compaction_coverage_closure(circuit):
    """compact_test_set → coverage must report exactly full coverage,
    and the deductive campaign over the same vectors must agree."""
    engine = DifferencePropagation(circuit)
    faults = collapsed_checkpoint_faults(circuit)
    compaction = compact_test_set(engine, faults)
    detected, detectable = coverage(engine, faults, compaction.tests)
    assert detected == detectable == len(compaction.detected)
    deductive = DeductiveFaultSimulator(circuit, faults)
    dropped = deductive.campaign(compaction.tests)
    assert set(compaction.detected) <= dropped  # lists may share extras
    assert not (dropped & set(compaction.redundant))


@settings(max_examples=10, deadline=None)
@given(circuits(max_inputs=4, max_gates=10))
def test_detectability_is_random_detection_probability(circuit):
    """δ really is the per-vector detection probability: counting the
    detecting vectors of the exhaustive simulator reproduces it."""
    engine = DifferencePropagation(circuit)
    oracle = TruthTableSimulator(circuit)
    for fault in collapsed_checkpoint_faults(circuit)[::2]:
        analysis = engine.analyze(fault)
        hits = sum(
            1
            for index in range(oracle.num_vectors)
            if (oracle.detection_word(fault) >> index) & 1
        )
        assert analysis.detectability == Fraction(hits, oracle.num_vectors)


@settings(max_examples=10, deadline=None)
@given(circuits(max_inputs=4, max_gates=10))
def test_atpg_flow_closes_the_loop(circuit):
    """PODEM + deductive dropping must reach exactly full coverage,
    agreeing with DP about which faults are redundant."""
    from repro.atpg import run_atpg_flow

    engine = DifferencePropagation(circuit)
    faults = collapsed_checkpoint_faults(circuit)
    flow = run_atpg_flow(circuit, faults)
    assert not flow.aborted
    assert flow.coverage == 1.0
    for fault in faults:
        analysis = engine.analyze(fault)
        if analysis.is_detectable:
            assert fault in set(flow.detected)
            assert any(analysis.tests.evaluate(t) for t in flow.tests)
        else:
            assert fault in set(flow.redundant)
