"""Golden sampled fixtures: byte-exact regression of the estimator.

The sampler is fully deterministic under a pinned seed, so the
committed ``tests/golden/*_sampled.json`` fixtures pin its *exact*
output — estimates, interval bounds, patterns spent, stratum labels.
Any drift in the substream derivation, the Wilson algebra, the
stopping rule or the stratifier regenerates differently and fails
here with the circuit and fault named.
"""

from __future__ import annotations

import json

import pytest

pytest.importorskip("numpy")

from repro.verify.golden import (
    GOLDEN_CIRCUITS,
    GOLDEN_DIR,
    GOLDEN_MODELS,
    SAMPLED_SCHEMA,
    generate_sampled_fixture,
    load_sampled_fixture,
    sampled_golden_path,
)

FIXTURES = [
    (circuit, model)
    for circuit in GOLDEN_CIRCUITS
    for model in GOLDEN_MODELS
]


@pytest.mark.parametrize(
    "circuit,model", FIXTURES, ids=[f"{c}-{m}" for c, m in FIXTURES]
)
def test_fixture_exists_and_regenerates_verbatim(circuit, model):
    path = sampled_golden_path(circuit, model)
    assert path.is_file(), f"missing committed fixture {path}"
    committed = load_sampled_fixture(path)
    assert committed["schema"] == SAMPLED_SCHEMA
    regenerated = generate_sampled_fixture(circuit, model)
    assert regenerated == committed


def test_fixture_records_carry_the_sampled_shape():
    document = load_sampled_fixture(sampled_golden_path("c17", "stuck-at"))
    assert document["settings"]["seed"] == 0
    assert document["settings"]["confidence"] == 0.95
    for record in document["faults"]:
        assert {"fault", "label", "stratum", "detectability"} <= set(record)
        assert 0.0 <= record["ci_low"] <= record["ci_high"] <= 1.0
        assert record["patterns_spent"] >= 1


def test_loader_rejects_foreign_schemas(tmp_path):
    bogus = tmp_path / "bogus_sampled.json"
    bogus.write_text(json.dumps({"schema": "other/1"}), encoding="utf-8")
    with pytest.raises(ValueError, match="unknown schema"):
        load_sampled_fixture(bogus)


def test_every_committed_sampled_fixture_is_parametrized():
    committed = set(GOLDEN_DIR.glob("*_sampled.json"))
    expected = {
        sampled_golden_path(circuit, model) for circuit, model in FIXTURES
    }
    assert committed == expected
