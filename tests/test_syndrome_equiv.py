"""Tests for syndrome-testability analysis and equivalence checking."""

from __future__ import annotations

import itertools
from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.analysis.syndrome_testing import (
    syndrome_shift,
    syndrome_untestable_faults,
)
from repro.circuit.builder import CircuitBuilder
from repro.circuit.equivalence import circuits_equivalent
from repro.circuit.netlist import CircuitError
from repro.core.engine import DifferencePropagation
from repro.core.symbolic import CircuitFunctions
from repro.faults.lines import Line
from repro.faults.stuck_at import StuckAtFault, all_stuck_at_faults
from repro.simulation.truthtable import TruthTableSimulator

from tests.strategies import circuits


class TestSyndromeShift:
    def test_shift_matches_truth_table(self, c17):
        functions = CircuitFunctions(c17)
        engine = DifferencePropagation(c17, functions=functions)
        simulator = TruthTableSimulator(c17)
        good = {po: simulator.syndrome(po) for po in c17.outputs}
        for fault in all_stuck_at_faults(c17)[::5]:
            analysis = engine.analyze(fault)
            shift = syndrome_shift(functions, analysis)
            # brute-force faulty syndromes
            from repro.simulation import _engine as sim_engine
            from repro.simulation.injection import injection_for

            faulty = sim_engine.faulty_pass(
                c17,
                {n: simulator.good_word(n) for n in c17.nets},
                injection_for(fault),
                simulator.mask,
            )
            for po, value in shift.shifts.items():
                faulty_syndrome = Fraction(
                    bin(faulty[po]).count("1"), simulator.num_vectors
                )
                assert value == faulty_syndrome - good[po]

    def test_xor_masking_fault_is_syndrome_invisible(self):
        """A fault flipping an output everywhere keeps |ones| iff the
        syndrome is exactly 1/2 — the classic syndrome-testing blind
        spot, built deliberately."""
        b = CircuitBuilder("blind")
        a, bb = b.inputs("a", "b")
        x = b.xor(a, bb, name="x")
        b.output(b.xor(x, a, name="y"))  # y == b
        circuit = b.build()
        functions = CircuitFunctions(circuit)
        engine = DifferencePropagation(circuit, functions=functions)
        # Stuck the inner xor's output: y becomes a⊕stuck ≠ b somewhere,
        # detectable, but the ones-count can stay put.
        analysis = engine.analyze(StuckAtFault(Line("x"), False))
        assert analysis.is_detectable
        shift = syndrome_shift(functions, analysis)
        assert not shift.syndrome_detectable

    def test_untestable_list(self, c17):
        functions = CircuitFunctions(c17)
        engine = DifferencePropagation(c17, functions=functions)
        analyses = [engine.analyze(f) for f in all_stuck_at_faults(c17)]
        invisible = syndrome_untestable_faults(functions, analyses)
        # every reported fault is detectable but shift-free everywhere
        for fault in invisible:
            analysis = engine.analyze(fault)
            assert analysis.is_detectable
            assert not syndrome_shift(functions, analysis).syndrome_detectable


class TestEquivalence:
    def test_positive(self, c17):
        report = circuits_equivalent(c17, c17.copy("twin"))
        assert report.equivalent
        assert report.counterexample is None

    def test_negative_with_counterexample(self):
        b1 = CircuitBuilder("one")
        a, bb = b1.inputs("a", "b")
        b1.output(b1.nand(a, bb, name="y"))
        b2 = CircuitBuilder("two")
        a, bb = b2.inputs("a", "b")
        b2.output(b2.nor(a, bb, name="y"))
        first, second = b1.build(), b2.build()
        report = circuits_equivalent(first, second)
        assert not report.equivalent
        assert report.counterexample_output == "y"
        witness = report.counterexample
        assert first.evaluate_outputs(witness) != second.evaluate_outputs(witness)

    def test_interface_mismatch_rejected(self, c17, c95):
        with pytest.raises(CircuitError):
            circuits_equivalent(c17, c95)

    def test_c499_c1355(self):
        from repro.benchcircuits import get_circuit

        report = circuits_equivalent(get_circuit("c499"), get_circuit("c1355"))
        assert report.equivalent


@settings(max_examples=25, deadline=None)
@given(circuits(max_inputs=4, max_gates=10))
def test_equivalence_reflexive_and_transform_invariant(circuit):
    from repro.circuit.transforms import decompose_to_two_input

    report = circuits_equivalent(circuit, decompose_to_two_input(circuit))
    assert report.equivalent


@settings(max_examples=20, deadline=None)
@given(circuits(max_inputs=4, max_gates=10))
def test_counterexamples_really_distinguish(circuit):
    """Mutate one gate; a non-equivalent result must carry a real witness."""
    from repro.circuit.gates import GateType
    from repro.circuit.netlist import Circuit

    mutated = Circuit(circuit.name)
    flipped = None
    for net in circuit.inputs:
        mutated.add_input(net)
    for gate in circuit.gates():
        gate_type = gate.gate_type
        if flipped is None and gate_type is GateType.AND:
            gate_type = GateType.NAND
            flipped = gate.name
        mutated.add_gate(gate.name, gate_type, gate.fanins)
    for net in circuit.outputs:
        mutated.add_output(net)
    report = circuits_equivalent(circuit, mutated)
    if not report.equivalent:
        witness = report.counterexample
        assert circuit.evaluate_outputs(witness) != mutated.evaluate_outputs(
            witness
        )
