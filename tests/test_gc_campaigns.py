"""Campaign-level GC acceptance: collections must be invisible.

The tentpole claim of the incremental-GC engine is that memory
management never changes an answer: a campaign run with an aggressively
tiny GC threshold — collecting every few faults — produces
detectabilities bit-identical to an engine that never collects at all
(and to the brute-force truth-table oracle), while keeping the live
node population bounded and *never* falling back to a whole-manager
rebuild. The slow-marked test is the full C432 acceptance criterion.
"""

from __future__ import annotations

import pytest

from repro.benchcircuits import get_circuit
from repro.core.engine import DifferencePropagation
from repro.experiments import campaigns, parallel
from repro.experiments.config import get_scale
from repro.faults.stuck_at import collapsed_checkpoint_faults
from repro.simulation.truthtable import TruthTableSimulator

SCALE = get_scale("ci")

#: Forces a collection every few faults even on small circuits.
TINY_GC_LIMIT = 300

#: Large enough that the no-GC reference engine never collects.
NEVER = 10**9


@pytest.fixture(scope="module", autouse=True)
def _fresh_campaign_state():
    campaigns.clear_campaign_caches()
    yield
    campaigns.clear_campaign_caches()


def _detectabilities(engine, faults):
    return [engine.analyze(f).detectability for f in faults]


# ----------------------------------------------------------------------
# Engine-level equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ("c95", "alu181"))
def test_gc_engine_matches_no_gc_engine(name):
    """Tiny-threshold GC runs many sweeps yet changes no detectability."""
    circuit = get_circuit(name)
    faults = collapsed_checkpoint_faults(circuit)
    gc_engine = DifferencePropagation(
        circuit, gc_node_limit=TINY_GC_LIMIT, rebuild_node_limit=NEVER
    )
    ref_engine = DifferencePropagation(
        circuit, gc_node_limit=NEVER, rebuild_node_limit=NEVER
    )
    assert _detectabilities(gc_engine, faults) == _detectabilities(
        ref_engine, faults
    )
    assert gc_engine.gc_runs > 0, "threshold never tripped — test is vacuous"
    assert gc_engine.rebuilds == 0
    assert ref_engine.gc_runs == 0


def test_gc_engine_matches_truth_table_oracle():
    """Differential check: GC'd engine vs brute-force simulation."""
    c95 = get_circuit("c95")
    engine = DifferencePropagation(
        c95, gc_node_limit=TINY_GC_LIMIT, rebuild_node_limit=NEVER
    )
    simulator = TruthTableSimulator(c95)
    for fault in collapsed_checkpoint_faults(c95):
        assert engine.analyze(fault).detectability == (
            simulator.detectability(fault)
        )
    assert engine.gc_runs > 0


def test_gc_bounds_live_nodes_and_allocation():
    """Collections keep both the live population and the slot store small."""
    c95 = get_circuit("c95")
    faults = collapsed_checkpoint_faults(c95)
    gc_engine = DifferencePropagation(
        c95, gc_node_limit=TINY_GC_LIMIT, rebuild_node_limit=NEVER
    )
    ref_engine = DifferencePropagation(
        c95, gc_node_limit=NEVER, rebuild_node_limit=NEVER
    )
    _detectabilities(gc_engine, faults)
    _detectabilities(ref_engine, faults)
    gc_stats = gc_engine.manager_stats()
    ref_stats = ref_engine.manager_stats()
    assert gc_stats.reclaimed_nodes > 0
    # Slot reuse: the collected manager's allocation high-water mark
    # stays well below the monotonically growing reference store.
    assert gc_stats.allocated_nodes < ref_stats.allocated_nodes
    # The adaptive threshold bounds the steady state (it only rises
    # when a sweep finds the store mostly live).
    assert gc_stats.live_nodes <= gc_engine._gc_threshold


def test_fault_analyses_held_across_gc_stay_valid():
    """Caller-retained analyses pin their roots through collections."""
    c95 = get_circuit("c95")
    faults = collapsed_checkpoint_faults(c95)
    engine = DifferencePropagation(
        c95, gc_node_limit=TINY_GC_LIMIT, rebuild_node_limit=NEVER
    )
    held = [engine.analyze(f) for f in faults[:8]]
    snapshots = [a.tests.density() for a in held]
    for fault in faults[8:]:
        engine.analyze(fault)
    assert engine.gc_runs > 0
    assert [a.tests.density() for a in held] == snapshots


# ----------------------------------------------------------------------
# Telemetry surfaces
# ----------------------------------------------------------------------
def test_serial_campaign_reports_gc_telemetry():
    campaigns.clear_campaign_caches()
    result = campaigns.stuck_at_campaign("c95", SCALE)
    assert len(result.chunk_stats) == 1
    stat = result.chunk_stats[0]
    assert stat.live_nodes > 0
    assert stat.cache_misses > 0
    assert 0.0 <= stat.cache_hit_rate <= 1.0
    assert result.live_nodes() == stat.live_nodes
    assert result.gc_runs() == stat.gc_runs
    assert result.rebuilds() == 0
    assert result.cache_hit_rate() == stat.cache_hit_rate


@pytest.mark.parallel
def test_parallel_campaign_reports_gc_telemetry():
    campaigns.clear_campaign_caches()
    circuit = get_circuit("c95")
    faults = collapsed_checkpoint_faults(circuit)
    result = parallel.run_campaign(
        circuit, "c95", SCALE, faults, bridging=False, n_workers=2
    )
    assert len(result.chunk_stats) > 1
    for stat in result.chunk_stats:
        assert stat.live_nodes > 0
        assert 0.0 <= stat.cache_hit_rate <= 1.0
    # Aggregates fold every chunk.
    assert result.live_nodes() == max(
        s.live_nodes for s in result.chunk_stats
    )
    assert result.gc_runs() == sum(s.gc_runs for s in result.chunk_stats)
    assert result.rebuilds() == 0


def test_telemetry_report_lists_cached_campaigns():
    campaigns.clear_campaign_caches()
    assert campaigns.telemetry_report() == [
        "campaign telemetry: no campaigns cached in this process"
    ]
    campaigns.stuck_at_campaign("c95", SCALE)
    lines = campaigns.telemetry_report()
    assert any("c95" in line and "stuck-at" in line for line in lines)


# ----------------------------------------------------------------------
# Full C432 acceptance criterion (slow)
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_c432_campaign_gc_without_rebuilds_is_bit_identical():
    """The PR's acceptance test: a full C432 checkpoint campaign at the
    default campaign thresholds triggers incremental GC, never the
    whole-manager rebuild fallback, keeps the steady-state live node
    count bounded by the (adaptive) threshold, and reproduces the
    never-collected baseline bit for bit."""
    circuit = get_circuit("c432")
    faults = collapsed_checkpoint_faults(circuit)
    gc_engine = DifferencePropagation(
        circuit,
        gc_node_limit=campaigns.CAMPAIGN_GC_LIMIT,
        rebuild_node_limit=campaigns.CAMPAIGN_REBUILD_LIMIT,
    )
    baseline = DifferencePropagation(
        circuit, gc_node_limit=NEVER, rebuild_node_limit=NEVER
    )
    assert _detectabilities(gc_engine, faults) == _detectabilities(
        baseline, faults
    )
    assert gc_engine.gc_runs > 0
    assert gc_engine.rebuilds == 0
    stats = gc_engine.manager_stats()
    assert stats.live_nodes <= gc_engine._gc_threshold
    assert stats.reclaimed_nodes > 0
    assert stats.allocated_nodes < baseline.manager_stats().allocated_nodes
