"""Tests for syndromes, upper bounds, adherence, and bridge equivalence."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings

from repro.circuit.builder import CircuitBuilder
from repro.core.engine import DifferencePropagation
from repro.core.metrics import (
    adherence,
    bridge_excitation,
    bridge_site_function,
    detectability_upper_bound,
    is_stuck_at_equivalent,
)
from repro.core.symbolic import CircuitFunctions
from repro.faults.bridging import BridgeKind, BridgingFault, enumerate_nfbfs
from repro.faults.lines import Line
from repro.faults.stuck_at import StuckAtFault, all_stuck_at_faults

from tests.strategies import circuits


class TestUpperBound:
    def test_stuck_at_bounds_are_syndrome_based(self, c95):
        functions = CircuitFunctions(c95)
        syndrome = functions.syndrome("g0")
        assert detectability_upper_bound(
            functions, StuckAtFault(Line("g0"), False)
        ) == syndrome
        assert detectability_upper_bound(
            functions, StuckAtFault(Line("g0"), True)
        ) == 1 - syndrome

    def test_bridge_bound_is_disagreement_density(self, c95):
        functions = CircuitFunctions(c95)
        fault = BridgingFault("g0", "p0", BridgeKind.AND)
        assert detectability_upper_bound(functions, fault) == (
            functions.function("g0") ^ functions.function("p0")
        ).density()

    def test_po_fault_reaches_its_bound(self, fulladder):
        """A PO stem fault's detectability equals its upper bound."""
        functions = CircuitFunctions(fulladder)
        engine = DifferencePropagation(fulladder, functions=functions)
        for po in fulladder.outputs:
            for value in (False, True):
                fault = StuckAtFault(Line(po), value)
                analysis = engine.analyze(fault)
                bound = detectability_upper_bound(functions, fault)
                assert analysis.detectability == bound


class TestAdherence:
    def test_range_and_definition(self):
        assert adherence(Fraction(1, 4), Fraction(1, 2)) == Fraction(1, 2)
        assert adherence(Fraction(0), Fraction(1, 2)) == 0
        assert adherence(Fraction(0), Fraction(0)) is None

    def test_po_faults_have_adherence_one(self, c95):
        functions = CircuitFunctions(c95)
        engine = DifferencePropagation(c95, functions=functions)
        for po in c95.outputs:
            fault = StuckAtFault(Line(po), False)
            bound = detectability_upper_bound(functions, fault)
            if bound == 0:
                continue
            value = adherence(engine.analyze(fault).detectability, bound)
            assert value == 1


class TestBridgeEquivalence:
    def test_constant_and_bridge_is_stuck_at(self):
        """Bridging complementary wires with AND sticks both at zero."""
        b = CircuitBuilder("compl")
        x, y = b.inputs("x", "y")
        pos = b.and_(x, y, name="pos")
        neg = b.nand(x, y, name="neg")
        b.output(b.or_(pos, neg, name="o1"))
        b.output(b.xor(pos, neg, name="o2"))
        circuit = b.build()
        functions = CircuitFunctions(circuit)
        and_bridge = BridgingFault("pos", "neg", BridgeKind.AND)
        or_bridge = BridgingFault("pos", "neg", BridgeKind.OR)
        assert is_stuck_at_equivalent(functions, and_bridge)  # pos·neg ≡ 0
        assert is_stuck_at_equivalent(functions, or_bridge)  # pos+neg ≡ 1
        assert bridge_site_function(functions, and_bridge).is_zero
        assert bridge_site_function(functions, or_bridge).is_one

    def test_generic_bridge_is_not_stuck_at(self, c17):
        functions = CircuitFunctions(c17)
        fault = BridgingFault("G10", "G19", BridgeKind.AND)
        assert not is_stuck_at_equivalent(functions, fault)

    def test_excitation_is_symmetric_in_kind(self, c17):
        functions = CircuitFunctions(c17)
        and_bf = BridgingFault("G10", "G19", BridgeKind.AND)
        or_bf = BridgingFault("G10", "G19", BridgeKind.OR)
        assert bridge_excitation(functions, and_bf) == bridge_excitation(
            functions, or_bf
        )


@settings(max_examples=20, deadline=None)
@given(circuits(max_inputs=4, max_gates=10))
def test_detectability_never_exceeds_upper_bound(circuit):
    """The paper's bound: δ ≤ U for every fault of both models."""
    functions = CircuitFunctions(circuit)
    engine = DifferencePropagation(circuit, functions=functions)
    for fault in all_stuck_at_faults(circuit)[::3]:
        analysis = engine.analyze(fault)
        assert analysis.detectability <= detectability_upper_bound(
            functions, fault
        )
    for kind in BridgeKind:
        for fault in list(enumerate_nfbfs(circuit, kind))[:15]:
            analysis = engine.analyze(fault)
            assert analysis.detectability <= detectability_upper_bound(
                functions, fault
            )


@settings(max_examples=20, deadline=None)
@given(circuits(max_inputs=4, max_gates=10))
def test_stuck_at_equivalent_bridges_match_double_stuck_simulation(circuit):
    """If the bridged function is constant, simulating both wires stuck
    at that constant gives the identical faulty behaviour."""
    from repro.simulation.truthtable import TruthTableSimulator
    from repro.simulation import _engine as sim_engine
    from repro.simulation.injection import FaultInjection

    functions = CircuitFunctions(circuit)
    simulator = TruthTableSimulator(circuit)
    good = {net: simulator.good_word(net) for net in circuit.nets}
    for kind in BridgeKind:
        for fault in list(enumerate_nfbfs(circuit, kind))[:20]:
            if not is_stuck_at_equivalent(functions, fault):
                continue
            site = bridge_site_function(functions, fault)
            constant = site.is_one
            word = simulator.mask if constant else 0

            def stuck(_good, _mask, w=word):
                return w

            double = FaultInjection(
                stem_overrides={fault.net_a: stuck, fault.net_b: stuck}
            )
            bridged = simulator.detection_word(fault)
            faulty = sim_engine.faulty_pass(circuit, good, double, simulator.mask)
            as_double = sim_engine.detection_word(circuit, good, faulty)
            assert bridged == as_double
