"""Every registered engine must reproduce the golden fixtures verbatim.

The fixtures under ``tests/golden/`` pin exact per-fault test counts,
detectabilities, and observable-PO sets (see ``repro.verify.golden``).
This suite runs **every** engine registered with the conformance seam —
dp, truth-table, deductive, bit-parallel, and anything a later PR
registers — over each fixture's fault list and demands bit-exact
agreement with the committed values. There is no tolerance: a
detectability that moves by one vector out of 16384 is a failure
naming the fault.

Engines opt out per fixture only through their own ``supports``
predicate (deductive skips bridging fixtures, exhaustive engines would
skip circuits beyond the input limit), and the suite asserts the
reference engine is never among the skippers.
"""

from __future__ import annotations

from fractions import Fraction
from pathlib import Path

import pytest

from repro.benchcircuits import get_circuit
from repro.core.symbolic import CircuitFunctions
from repro.verify import golden
from repro.verify.conformance import ENGINES

GOLDEN_DIR = Path(__file__).parent / "golden"
# exact fixtures only — the *_sampled.json twins have their own loader,
# schema and test module (tests/test_golden_sampled.py)
FIXTURES = sorted(
    p for p in GOLDEN_DIR.glob("*.json") if not p.stem.endswith("_sampled")
)

_functions_cache: dict[str, CircuitFunctions] = {}


def _functions(circuit_name: str) -> CircuitFunctions:
    if circuit_name not in _functions_cache:
        _functions_cache[circuit_name] = CircuitFunctions(
            get_circuit(circuit_name)
        )
    return _functions_cache[circuit_name]


@pytest.fixture(scope="module", autouse=True)
def _release_functions():
    yield
    _functions_cache.clear()


def test_fixture_set_is_complete():
    """One committed fixture per (circuit, model) pair — no gaps."""
    expected = {
        f"{circuit}_{model}"
        for circuit in golden.GOLDEN_CIRCUITS
        for model in golden.GOLDEN_MODELS
    }
    assert {path.stem for path in FIXTURES} == expected


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_fixture_matches_generator_policy(path):
    """The committed fault list is exactly the policy's enumeration.

    Guards against a stale fixture after a netlist or collapsing
    change: the fault *list* must match before detectabilities are
    even compared.
    """
    document = golden.load_fixture(path)
    committed = [
        golden.fault_from_dict(record["fault"])
        for record in document["faults"]
    ]
    assert committed == golden.golden_faults(
        document["circuit"], document["model"]
    )
    circuit = get_circuit(document["circuit"])
    assert document["num_vectors"] == 1 << circuit.num_inputs


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_every_engine_reproduces_fixture(path):
    document = golden.load_fixture(path)
    circuit = get_circuit(document["circuit"])
    faults = [
        golden.fault_from_dict(record["fault"])
        for record in document["faults"]
    ]
    num_vectors = document["num_vectors"]
    ran = []
    for name in sorted(ENGINES):
        spec = ENGINES[name]
        if not spec.supports(circuit, faults):
            continue
        reports = spec.run(circuit, faults, _functions(document["circuit"]))
        assert len(reports) == len(faults)
        for record, report in zip(document["faults"], reports):
            context = (name, document["circuit"], record["label"])
            assert report.fault == golden.fault_from_dict(record["fault"])
            expected = Fraction(record["test_count"], num_vectors)
            assert report.detectability == expected, context
            if report.test_count is not None:
                assert report.test_count == record["test_count"], context
            if report.observable_pos is not None:
                assert (
                    sorted(report.observable_pos)
                    == record["observable_pos"]
                ), context
        ran.append(name)
    # the reference engine supports everything; the exhaustive engines
    # support every golden circuit by construction
    assert "dp" in ran
    assert "truthtable" in ran


def test_bitparallel_covers_every_fixture():
    """The vectorized kernel must not silently opt out of any fixture."""
    pytest.importorskip("numpy")
    spec = ENGINES["bitparallel"]
    for path in FIXTURES:
        document = golden.load_fixture(path)
        circuit = get_circuit(document["circuit"])
        faults = [
            golden.fault_from_dict(record["fault"])
            for record in document["faults"]
        ]
        assert spec.supports(circuit, faults), path.stem
