"""Unit + property tests for the invariant oracle library."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.benchcircuits import get_circuit
from repro.core.engine import DifferencePropagation
from repro.core.symbolic import CircuitFunctions
from repro.faults.lines import Line
from repro.faults.stuck_at import StuckAtFault, collapsed_checkpoint_faults
from repro.verify.oracles import (
    FaultReport,
    ORACLES,
    check_campaign,
    check_report,
    check_reports,
    cross_engine_violations,
    perturbed,
    report_from_analysis,
)

from tests.strategies import circuits


@pytest.fixture(scope="module")
def c17_reports():
    circuit = get_circuit("c17")
    functions = CircuitFunctions(circuit)
    engine = DifferencePropagation(circuit, functions=functions)
    return circuit, [
        report_from_analysis("dp", engine.analyze(fault), functions)
        for fault in collapsed_checkpoint_faults(circuit)
    ]


def test_oracle_registry_is_complete():
    assert {
        "detectability-range",
        "bound-range",
        "detectability-bound",
        "adherence-range",
        "minterm-count",
        "po-feed",
        "redundancy",
    } <= set(ORACLES)


def test_honest_dp_reports_are_clean(c17_reports):
    circuit, reports = c17_reports
    assert check_reports(circuit, reports) == []


@pytest.mark.parametrize(
    "changes, expected_oracle",
    [
        ({"detectability": Fraction(3, 2)}, "detectability-range"),
        ({"upper_bound": Fraction(-1, 4)}, "bound-range"),
        ({"upper_bound": Fraction(1, 1 << 10)}, "detectability-bound"),
        ({"test_count": 999}, "minterm-count"),
        (
            {"detectability": Fraction(0), "test_count": 0},
            "redundancy",
        ),
    ],
)
def test_each_oracle_trips_on_its_defect(c17_reports, changes, expected_oracle):
    circuit, reports = c17_reports
    victim = next(
        r for r in reports if r.detectability > 0 and r.observable_pos
    )
    broken = perturbed(victim, **changes)
    fired = {v.oracle for v in check_report(circuit, broken)}
    assert expected_oracle in fired


def test_po_feed_oracle_rejects_unfed_output(c17_reports):
    circuit, reports = c17_reports
    victim = next(r for r in reports if r.observable_pos)
    # claim observability at a PI, which no fault site "feeds"
    broken = perturbed(
        victim, observable_pos=victim.observable_pos | {"not_a_po"}
    )
    fired = {v.oracle for v in check_report(circuit, broken)}
    assert "po-feed" in fired


def test_unexcitable_fault_must_be_undetectable(c17_reports):
    circuit, reports = c17_reports
    victim = next(r for r in reports if r.detectability > 0)
    broken = perturbed(victim, upper_bound=Fraction(0))
    fired = {v.oracle for v in check_report(circuit, broken)}
    assert "adherence-range" in fired


def test_inexact_reports_skip_approximation_sensitive_oracles(c17_reports):
    circuit, reports = c17_reports
    victim = next(r for r in reports if r.detectability > 0)
    # under cut-point decomposition δ may legitimately exceed the bound
    approximate = perturbed(
        victim,
        upper_bound=victim.detectability / 2,
        test_count=None,
        exact=False,
    )
    fired = {v.oracle for v in check_report(circuit, approximate)}
    assert "detectability-bound" not in fired
    assert "adherence-range" not in fired


def test_cross_engine_agreement_and_disagreement(c17_reports):
    circuit, reports = c17_reports
    twins = [perturbed(r, engine="other") for r in reports]
    assert cross_engine_violations(circuit, {"dp": reports, "other": twins}) == []

    lying = list(twins)
    lying[0] = perturbed(
        lying[0],
        detectability=lying[0].detectability + Fraction(1, 1 << 5),
        test_count=None,
        observable_pos=None,
    )
    fired = {
        v.oracle
        for v in cross_engine_violations(circuit, {"dp": reports, "other": lying})
    }
    assert fired == {"cross-engine-detectability"}


def test_cross_engine_single_engine_is_vacuous(c17_reports):
    circuit, reports = c17_reports
    assert cross_engine_violations(circuit, {"dp": reports}) == []


def test_check_campaign_on_real_campaign():
    from repro.experiments.campaigns import stuck_at_campaign
    from repro.experiments.config import get_scale

    campaign = stuck_at_campaign("c17", get_scale("ci"))
    assert check_campaign(campaign) == []


def test_minterm_count_requires_matching_num_vars():
    circuit = get_circuit("c17")
    report = FaultReport(
        engine="synthetic",
        fault=StuckAtFault(Line(circuit.inputs[0]), False),
        detectability=Fraction(1, 2),
        num_vars=circuit.num_inputs,
        test_count=1 << (circuit.num_inputs - 1),
    )
    assert check_report(circuit, report) == []


@settings(max_examples=20, deadline=None)
@given(circuits(max_inputs=4, max_gates=10))
def test_dp_reports_clean_on_random_circuits(circuit):
    """Every invariant holds for honest DP on arbitrary netlists."""
    functions = CircuitFunctions(circuit)
    engine = DifferencePropagation(circuit, functions=functions)
    reports = [
        report_from_analysis("dp", engine.analyze(fault), functions)
        for fault in collapsed_checkpoint_faults(circuit)
    ]
    violations = check_reports(circuit, reports)
    assert not violations, "\n".join(str(v) for v in violations)
