"""Tests for the good-function builder (CircuitFunctions)."""

from __future__ import annotations

import itertools
from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.circuit.netlist import CircuitError
from repro.core.symbolic import CircuitFunctions
from repro.simulation.truthtable import TruthTableSimulator

from tests.strategies import circuits


class TestExactFunctions:
    def test_matches_evaluation(self, fulladder):
        functions = CircuitFunctions(fulladder)
        for values in itertools.product([False, True], repeat=3):
            assignment = dict(zip(fulladder.inputs, values))
            reference = fulladder.evaluate(assignment)
            for net in fulladder.nets:
                assert functions.function(net).evaluate(assignment) == reference[net]

    def test_syndromes_match_truth_tables(self, c95):
        functions = CircuitFunctions(c95)
        simulator = TruthTableSimulator(c95)
        for net in c95.nets:
            assert functions.syndrome(net) == simulator.syndrome(net)

    def test_default_order_is_declared_pi_order(self, c17):
        functions = CircuitFunctions(c17)
        assert functions.order == c17.inputs
        assert functions.manager.var_names == c17.inputs

    def test_custom_order(self, c17):
        reordered = tuple(reversed(c17.inputs))
        functions = CircuitFunctions(c17, order=reordered)
        assert functions.manager.var_names == reordered
        # Function values are order-independent.
        assignment = {net: True for net in c17.inputs}
        for po in c17.outputs:
            assert functions.function(po).evaluate(assignment) == (
                c17.evaluate_outputs(assignment)[po]
            )

    def test_invalid_order_rejected(self, c17):
        with pytest.raises(CircuitError):
            CircuitFunctions(c17, order=("G1", "G2"))

    def test_unknown_net_rejected(self, c17):
        functions = CircuitFunctions(c17)
        with pytest.raises(CircuitError):
            functions.node("nope")

    def test_is_exact_without_decomposition(self, c17):
        assert CircuitFunctions(c17).is_exact

    def test_zero_one_helpers(self, c17):
        functions = CircuitFunctions(c17)
        assert functions.zero().is_zero
        assert functions.one().is_one

    def test_rebuilt_gives_equal_functions(self, c95):
        functions = CircuitFunctions(c95)
        rebuilt = functions.rebuilt()
        assert rebuilt.manager is not functions.manager
        for net in c95.nets:
            assert rebuilt.syndrome(net) == functions.syndrome(net)


class TestDecomposition:
    def test_cut_points_created(self, alu181):
        functions = CircuitFunctions(alu181, decompose_threshold=30)
        assert functions.cut_points
        assert not functions.is_exact
        assert functions.num_vars == alu181.num_inputs + len(functions.cut_points)

    def test_cut_net_becomes_free_variable(self, alu181):
        functions = CircuitFunctions(alu181, decompose_threshold=30)
        net, pseudo = next(iter(functions.cut_points.items()))
        assert functions.function(net).support() == frozenset({pseudo})
        assert functions.syndrome(net) == Fraction(1, 2)

    def test_threshold_validation(self, c17):
        with pytest.raises(ValueError):
            CircuitFunctions(c17, decompose_threshold=1)

    def test_huge_threshold_cuts_nothing(self, c95):
        functions = CircuitFunctions(c95, decompose_threshold=10**9)
        assert functions.is_exact

    def test_syndrome_approximation_is_reasonable(self, alu181):
        """Cut-point syndromes stay in a loose band of the truth.

        Individual outputs can drift substantially (the paper's own
        caveat about decomposition masking interactions); the aggregate
        must stay sane.
        """
        exact = CircuitFunctions(alu181)
        approx = CircuitFunctions(alu181, decompose_threshold=60)
        deviations = [
            abs(float(exact.syndrome(po)) - float(approx.syndrome(po)))
            for po in alu181.outputs
        ]
        assert max(deviations) <= 0.75
        assert sum(deviations) / len(deviations) < 0.30


@settings(max_examples=25, deadline=None)
@given(circuits(max_inputs=4, max_gates=12))
def test_functions_match_truth_tables_on_random_circuits(circuit):
    functions = CircuitFunctions(circuit)
    simulator = TruthTableSimulator(circuit)
    for net in circuit.nets:
        assert functions.syndrome(net) == simulator.syndrome(net)
