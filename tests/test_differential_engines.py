"""Cross-engine differential harness.

Three independently implemented engines must agree exactly on every
fault's detectability:

1. **Difference Propagation** (`core.engine`) — OBDD Δ-propagation,
   the paper's algorithm;
2. **truth-table fault simulation** (`simulation.truthtable`) —
   bit-parallel exhaustive simulation, one bit per input vector;
3. **deductive fault simulation** (`simulation.deductive`) —
   Armstrong's flip-set algebra, one pass per vector.

They share no propagation code (BDD apply vs. integer words vs.
frozenset algebra), so agreement on complete collapsed checkpoint sets
is strong evidence all three are right. The per-fault sweeps run
through the shared conformance surface (:mod:`repro.verify`) — the
engine adapters and oracles here are the exact ones CI's
``python -m repro.verify`` gate uses. Small circuits are swept
exhaustively; the 74LS181 runs a seeded fault/vector sample; a C432
spot-check against concrete single-vector simulation is marked slow.
"""

from __future__ import annotations

import random

import pytest

from repro.benchcircuits import get_circuit
from repro.core.engine import DifferencePropagation
from repro.core.symbolic import CircuitFunctions
from repro.faults.stuck_at import collapsed_checkpoint_faults
from repro.simulation import TruthTableSimulator, detects
from repro.simulation.deductive import DeductiveFaultSimulator
from repro.verify import ENGINES, check_reports, cross_engine_violations

FULL_SWEEP_CIRCUITS = ("c17", "fulladder", "c95")


@pytest.mark.parametrize("name", FULL_SWEEP_CIRCUITS)
def test_three_engines_agree_on_every_checkpoint_fault(name):
    """DP == truth table == deductive, exactly, fault by fault."""
    circuit = get_circuit(name)
    faults = collapsed_checkpoint_faults(circuit)
    assert faults, "collapsed checkpoint set must be non-empty"

    functions = CircuitFunctions(circuit)
    reports = {
        engine: spec.run(circuit, faults, functions)
        for engine, spec in ENGINES.items()
        if spec.supports(circuit, faults)
    }
    assert set(reports) >= {"dp", "truthtable", "deductive"}

    violations = [
        violation
        for engine_reports in reports.values()
        for violation in check_reports(circuit, engine_reports)
    ]
    violations.extend(cross_engine_violations(circuit, reports))
    assert not violations, "\n".join(str(v) for v in violations)


@pytest.mark.parametrize("name", FULL_SWEEP_CIRCUITS)
def test_dp_test_sets_match_truth_table_words(name):
    """Beyond the scalar: the *complete test sets* must be identical."""
    circuit = get_circuit(name)
    engine = DifferencePropagation(circuit)
    tts = TruthTableSimulator(circuit)
    for fault in collapsed_checkpoint_faults(circuit):
        analysis = engine.analyze(fault)
        word = tts.detection_word(fault)
        for vector in range(tts.num_vectors):
            in_dp = analysis.tests.evaluate(tts.assignment_for(vector))
            assert in_dp == bool((word >> vector) & 1), (
                f"{name} {fault}: vector {vector} disagrees"
            )


def test_alu181_sampled_faults_and_vectors_agree():
    """74LS181 (14 PIs): seeded sample, per-vector three-way agreement."""
    circuit = get_circuit("alu181")
    rng = random.Random(181)
    all_faults = collapsed_checkpoint_faults(circuit)
    faults = sorted(rng.sample(all_faults, 24))
    vectors = rng.sample(range(2**circuit.num_inputs), 48)

    engine = DifferencePropagation(circuit)
    tts = TruthTableSimulator(circuit)
    deductive = DeductiveFaultSimulator(circuit, faults)
    analyses = {fault: engine.analyze(fault) for fault in faults}
    words = {fault: tts.detection_word(fault) for fault in faults}

    for vector in vectors:
        assignment = tts.assignment_for(vector)
        detected = deductive.detected(assignment)
        for fault in faults:
            in_dp = analyses[fault].tests.evaluate(assignment)
            in_tt = bool((words[fault] >> vector) & 1)
            in_ded = fault in detected
            assert in_dp == in_tt == in_ded, (
                f"{fault} @ vector {vector}: dp={in_dp} tt={in_tt} "
                f"deductive={in_ded}"
            )


@pytest.mark.slow
def test_c432_spot_check_against_concrete_simulation():
    """C432 (36 PIs — beyond truth tables): DP vs. one-vector simulation.

    For a seeded fault sample, every vector DP claims detects the fault
    must flip an output in concrete faulty simulation, and vice versa
    for random probe vectors.
    """
    circuit = get_circuit("c432")
    rng = random.Random(432)
    faults = sorted(rng.sample(collapsed_checkpoint_faults(circuit), 40))
    engine = DifferencePropagation(circuit)
    for fault in faults:
        analysis = engine.analyze(fault)
        picked = analysis.pick_test()
        if picked is not None:
            full = {net: picked.get(net, False) for net in circuit.inputs}
            assert detects(circuit, full, fault), f"{fault}: DP test rejected"
        else:
            assert analysis.detectability == 0
        for _ in range(8):
            probe = {net: rng.random() < 0.5 for net in circuit.inputs}
            assert analysis.tests.evaluate(probe) == detects(
                circuit, probe, fault
            ), f"{fault}: probe vector disagrees"
